"""Seeded fault plans: reproducible timed fault-event sequences.

A :class:`FaultPlan` is data, not behaviour: each
:class:`FaultEvent` names a kind (``member-death``, ``region-stuck``,
``port-flaky``), an injection instant and the kind's parameters.
:meth:`FaultPlan.install` schedules the events on a scheduler's own
event queue, where the scheduler's fault machinery
(:meth:`~repro.sched.scheduler.OnlineTaskScheduler.kill_member`,
:meth:`~repro.sched.scheduler.OnlineTaskScheduler.inject_region_fault`,
:meth:`~repro.sched.scheduler.OnlineTaskScheduler.flake_port`) carries
them out.  Everything is derived from ``(name, device shape,
fleet size, seed)`` through a dedicated :class:`random.Random`, so the
same spec always injects the same faults — the property every
determinism test in the battery leans on.

This module deliberately imports nothing from the rest of the tree:
the scheduler layer imports nothing from here either, so fault plans
can be built (and unit-tested) in complete isolation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

#: default mid-surge kill instant for the ``kill-member`` plan: the
#: fleet-surge generator's arrivals land in roughly the first three
#: simulated seconds, so t = 2.0 hits the fleet at peak residency.
KILL_AT = 2.0


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One timed fault: what breaks, where, when, for how long."""

    #: injection instant on the simulation timeline (seconds).
    at: float
    #: ``member-death`` | ``region-stuck`` | ``port-flaky``.
    kind: str
    #: target fleet member (device index).
    member: int = 0
    #: stuck-at region anchor + shape (``region-stuck`` only).
    row: int = 0
    col: int = 0
    height: int = 0
    width: int = 0
    #: seconds until a stuck-at region heals (``None`` = permanent).
    duration: float | None = None
    #: retry count and per-retry backoff of a ``port-flaky`` brown-out
    #: (the port is occupied for ``retries * backoff`` seconds).
    retries: int = 3
    backoff: float = 0.2

    def __post_init__(self) -> None:
        """Validate the event's kind and timing."""
        if self.kind not in ("member-death", "region-stuck", "port-flaky"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("fault instant cannot be negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("fault duration must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered fault-event sequence."""

    name: str
    events: tuple[FaultEvent, ...] = ()

    def __len__(self) -> int:
        """Number of fault events in the plan."""
        return len(self.events)

    def install(self, scheduler) -> None:
        """Schedule every event on ``scheduler``'s event queue.

        ``scheduler`` is an
        :class:`~repro.sched.scheduler.OnlineTaskScheduler` (duck
        typed: anything exposing ``events`` plus the three fault
        methods works).  Events strictly in the past are refused by the
        queue itself; install before the run (t = 0) or at the current
        instant of a live service.
        """
        for event in self.events:
            scheduler.events.at(
                event.at, lambda e=event: apply_event(scheduler, e)
            )


def apply_event(scheduler, event: FaultEvent) -> None:
    """Carry one :class:`FaultEvent` out on ``scheduler``."""
    if event.kind == "member-death":
        scheduler.kill_member(event.member)
    elif event.kind == "region-stuck":
        scheduler.inject_region_fault(
            event.member, event.row, event.col, event.height, event.width,
            duration=event.duration,
        )
    else:
        scheduler.flake_port(
            event.member, retries=event.retries, backoff=event.backoff
        )


def _none_plan(device, fleet_size: int, seed: int) -> FaultPlan:
    """The empty plan: inject nothing (the campaign default)."""
    return FaultPlan("none")


def _kill_member_plan(device, fleet_size: int, seed: int) -> FaultPlan:
    """Kill one member mid-surge.

    The victim is seeded over the *non-primary* members (workloads are
    sized against member 0, so killing it would conflate "member died"
    with "largest device vanished"); a 2-member fleet always loses
    member 1.  Requires ``fleet_size >= 2``.
    """
    if fleet_size < 2:
        raise ValueError(
            "the kill-member plan needs a fleet of at least 2 members"
        )
    # Seed with a string: Random(str) is deterministic across
    # processes, Random(tuple) would fall back to randomized hash().
    rng = random.Random(f"kill-member:{seed}")
    victim = rng.randrange(1, fleet_size)
    return FaultPlan(
        "kill-member",
        (FaultEvent(at=KILL_AT, kind="member-death", member=victim),),
    )


def _outbreak_plan(device, fleet_size: int, seed: int) -> FaultPlan:
    """Two seeded stuck-at outbreaks on member 0, each transient.

    Region anchors and shapes are drawn from the device's CLB grid
    (``device`` is any object with ``clb_rows`` / ``clb_cols``); both
    regions heal, so the run also exercises the space-reclaim path.
    """
    rng = random.Random(f"outbreak:{seed}")
    events = []
    for at in (1.0, 2.5):
        height = min(device.clb_rows, rng.randint(2, 3))
        width = min(device.clb_cols, rng.randint(2, 3))
        row = rng.randrange(device.clb_rows - height + 1)
        col = rng.randrange(device.clb_cols - width + 1)
        events.append(FaultEvent(
            at=at, kind="region-stuck", member=0,
            row=row, col=col, height=height, width=width,
            duration=1.5,
        ))
    return FaultPlan("outbreak", tuple(events))


def _flaky_port_plan(device, fleet_size: int, seed: int) -> FaultPlan:
    """Periodic configuration-port brown-outs on member 0.

    Four flakes across the surge window, each costing
    ``retries * backoff`` = 0.6 port seconds — enough to push queued
    configuration traffic around without starving it.
    """
    return FaultPlan(
        "flaky-port",
        tuple(
            FaultEvent(at=at, kind="port-flaky", member=0,
                       retries=3, backoff=0.2)
            for at in (0.5, 1.5, 2.5, 3.5)
        ),
    )


#: named plan factories: ``(device, fleet_size, seed) -> FaultPlan``.
FAULT_PLANS: dict[str, Callable] = {
    "none": _none_plan,
    "kill-member": _kill_member_plan,
    "outbreak": _outbreak_plan,
    "flaky-port": _flaky_port_plan,
}

#: the campaign ``--faults`` axis vocabulary, in display order.
FAULT_PLAN_NAMES = tuple(FAULT_PLANS)


def make_fault_plan(name: str, device, fleet_size: int,
                    seed: int) -> FaultPlan:
    """Build the named plan for one scenario's device/fleet/seed."""
    try:
        factory = FAULT_PLANS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault plan {name!r} "
            f"(choose from {', '.join(FAULT_PLANS)})"
        ) from None
    return factory(device, fleet_size, seed)
