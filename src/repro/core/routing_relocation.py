"""Relocation of routing resources (paper, section 3 and Fig. 5).

    "The relocation of routing resources does not pose any special
    problems, since the same two-phase relocation procedure is effective
    on the relocation of local and global interconnections.  The
    interconnections involved are first duplicated in order to establish
    an alternative path, and then disconnected, becoming available to be
    reused."

:class:`RoutingRelocator` performs exactly that duplicate-then-disconnect
sequence on allocated :class:`~repro.device.routing.RoutePath` objects,
maintaining the connectivity invariant (the sink is reachable from the
source through at least one fully allocated path at every instant) and
producing the Fig. 6 timing analysis for the parallel interval (the
effective delay is the longer of the two paths; mismatched arrivals give
an interval of fuzziness at the destination input).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.device.routing import (
    RoutePath,
    RoutingError,
    RoutingGraph,
    path_channels,
)
from repro.netlist.timing import (
    ParallelPathReport,
    Waveform,
    merge_parallel_paths,
    square_wave,
)


class PathPhase(Enum):
    """Life-cycle of a relocated interconnection."""

    ORIGINAL_ONLY = "original-only"
    PARALLEL = "parallel"        # both paths allocated and driven
    REPLICA_ONLY = "replica-only"


@dataclass
class PathRelocationReport:
    """Observation record of one routing relocation."""

    original: RoutePath
    replica: RoutePath
    timing: ParallelPathReport
    phases: list[PathPhase] = field(default_factory=list)
    wires_before: int = 0
    wires_during: int = 0
    wires_after: int = 0

    @property
    def connectivity_preserved(self) -> bool:
        """True when the sequence never left the sink unreachable."""
        return self.phases == [
            PathPhase.ORIGINAL_ONLY,
            PathPhase.PARALLEL,
            PathPhase.REPLICA_ONLY,
        ]

    @property
    def delay_change_ns(self) -> float:
        """Replica minus original propagation delay (may be positive:
        "the relocation procedure might imply a longer path")."""
        return self.replica.delay_ns - self.original.delay_ns

    def columns(self) -> set[int]:
        """Configuration columns touched (both paths' switch matrices)."""
        return self.original.columns() | self.replica.columns()


class RoutingRelocator:
    """Duplicate-then-disconnect relocation of allocated paths."""

    def __init__(self, routing: RoutingGraph) -> None:
        self.routing = routing

    def relocate_path(
        self,
        path: RoutePath,
        disjoint: bool = True,
        source_wave: Waveform | None = None,
    ) -> PathRelocationReport:
        """Move one allocated path onto fresh routing resources.

        ``disjoint=True`` forbids the replica from sharing any channel
        with the original (the strict reading of Fig. 5); ``False``
        merely requires free wires.  ``source_wave`` drives the Fig. 6
        analysis of the parallel interval (a representative square wave
        by default).  The original is released only after the replica is
        fully allocated.  Raises :class:`RoutingError` when no replica
        path exists — in which case nothing was modified.
        """
        phases = [PathPhase.ORIGINAL_ONLY]
        wires_before = self.routing.total_wires_used()
        avoid = path_channels(path) if disjoint else None
        replica = self.routing.route(path.source, path.sink, avoid=avoid)
        if not replica.segments and path.segments:
            raise RoutingError("replica path degenerated to nothing")
        self.routing.allocate(replica)
        phases.append(PathPhase.PARALLEL)
        wires_during = self.routing.total_wires_used()
        wave = source_wave or square_wave(
            period=8.0 * max(path.delay_ns, replica.delay_ns, 1.0), edges=6
        )
        timing = merge_parallel_paths(wave, path.delay_ns, replica.delay_ns)
        self.routing.release(path)
        phases.append(PathPhase.REPLICA_ONLY)
        report = PathRelocationReport(
            original=path,
            replica=replica,
            timing=timing,
            phases=phases,
            wires_before=wires_before,
            wires_during=wires_during,
            wires_after=self.routing.total_wires_used(),
        )
        return report

    def optimize_path(self, path: RoutePath) -> PathRelocationReport | None:
        """Rearrange one path onto a shorter route if one exists.

        Implements section 3's motivation: "to optimise the occupancy of
        such resources ... and to increase the availability of routing
        paths to incoming functions".  Returns ``None`` when the current
        path is already optimal.
        """
        # Probe without the original's wires held, since they will be
        # released: temporarily free them for the search.
        self.routing.release(path)
        try:
            candidate = self.routing.route(path.source, path.sink)
        finally:
            self.routing.allocate(path)
        if candidate.delay_ns >= path.delay_ns:
            return None
        return self.relocate_path(path, disjoint=False)

    def relocate_many(
        self, paths: list[RoutePath], disjoint: bool = True
    ) -> list[PathRelocationReport]:
        """Relocate several paths one at a time (the paper's staged
        approach, "to avoid an excessive increase in path delays during
        the relocation interval")."""
        return [self.relocate_path(p, disjoint=disjoint) for p in paths]
