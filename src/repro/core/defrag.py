"""Rearrangement planning: which running functions move, and where.

The goal, from the paper's section 1:

    "If a new function cannot be allocated immediately due to lack of
    contiguous free resources, a suitable rearrangement of a subset of
    the functions currently running may solve the problem."

The planner proposes a move list that releases a contiguous ``height`` x
``width`` rectangle, preferring plans that disturb the fewest running
functions (reference [5]'s criterion: "minimising disruptions to running
functions that are to be relocated").  Three strategies are tried, best
plan wins:

* **none-needed** — the request already fits (empty move list);
* **ordered compaction** — slide residents toward an edge (1-D moves);
* **eviction** — pick a target window and relocate exactly the functions
  overlapping it into free space elsewhere (the most surgical plan).

Planning happens on scratch grids; execution belongs to the manager,
which charges reconfiguration time per move and — in the paper's
contribution — performs the moves *concurrently* with execution via
dynamic relocation instead of halting the moved functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.device.geometry import Rect
from repro.placement.compaction import (
    Move,
    apply_moves,
    footprints,
    ordered_compaction,
    sequence_moves,
)
from repro.placement.fit import best_fit, first_fit
from repro.placement.free_space import largest_empty_rectangle


@dataclass
class RearrangementPlan:
    """A target rectangle plus the moves that make it free."""

    target: Rect
    moves: list[Move] = field(default_factory=list)
    method: str = "none-needed"

    @property
    def moved_area(self) -> int:
        """Total CLB sites that must be relocated."""
        return sum(m.src.area for m in self.moves)

    @property
    def disturbed_functions(self) -> int:
        """Number of running functions the plan touches."""
        return len({m.owner for m in self.moves})

    def __str__(self) -> str:
        return (
            f"<plan {self.method}: target {self.target}, "
            f"{len(self.moves)} moves, {self.moved_area} sites>"
        )


class DefragPlanner:
    """Finds minimal-disturbance rearrangements for a placement request."""

    def __init__(self, max_moves: int = 8, max_candidates: int = 256,
                 max_consolidation_moves: int = 16) -> None:
        if max_moves < 1:
            raise ValueError("max_moves must be positive")
        if max_candidates < 1:
            raise ValueError("max_candidates must be positive")
        if max_consolidation_moves < 1:
            raise ValueError("max_consolidation_moves must be positive")
        self.max_moves = max_moves
        self.max_candidates = max_candidates
        #: proactive consolidations serve no single request, so they may
        #: disturb more functions than a reactive plan is allowed to.
        self.max_consolidation_moves = max_consolidation_moves

    def plan(self, occupancy: np.ndarray, height: int,
             width: int) -> RearrangementPlan | None:
        """Best plan freeing a ``height`` x ``width`` rectangle, or None.

        Candidate plans are scored by (functions disturbed, sites moved,
        total move distance) — fewer and smaller disruptions first.
        """
        direct = first_fit(occupancy, height, width)
        if direct is not None:
            return RearrangementPlan(direct)
        # No rearrangement can help when the free *area* is too small:
        # defragmentation only consolidates, it cannot create sites.
        if int((occupancy == 0).sum()) < height * width:
            return None
        candidates: list[RearrangementPlan] = []
        candidates.extend(self._compaction_plans(occupancy, height, width))
        eviction = self._eviction_plan(occupancy, height, width)
        if eviction is not None:
            candidates.append(eviction)
        candidates = [
            p for p in candidates if len(p.moves) <= self.max_moves
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda p: (
                p.disturbed_functions,
                p.moved_area,
                sum(m.distance for m in p.moves),
            ),
        )

    def plan_consolidation(
        self, occupancy: np.ndarray
    ) -> RearrangementPlan | None:
        """Best consolidation: maximise the largest free rectangle.

        Unlike :meth:`plan`, no pending request drives the search — the
        goal is to compact the resident functions so that *future*
        arrivals find the free space as contiguous as possible (the
        proactive-defragmentation premise).  Candidates are ordered
        compactions toward the left edge, the top edge, and both in
        sequence (corner packing), each truncated to
        ``max_consolidation_moves``; a prefix of a compaction move list
        is always executable in order, so truncation stays collision
        free.  Returns ``None`` unless some candidate *strictly* grows
        the largest free rectangle — consolidation never shrinks it, and
        pointless move lists are never executed.  The returned plan's
        ``target`` is the largest free rectangle of the compacted grid.
        """
        current = largest_empty_rectangle(occupancy)
        baseline = current.area if current is not None else 0
        cap = self.max_consolidation_moves
        candidates: list[tuple[str, list[Move]]] = []
        left = ordered_compaction(occupancy, toward="left")
        top = ordered_compaction(occupancy, toward="top")
        candidates.append(("consolidate-left", left[:cap]))
        candidates.append(("consolidate-top", top[:cap]))
        if left and len(left) < cap:
            # Corner packing: compact left, then compact the result up
            # (skipped when truncation could never reach the top moves —
            # the candidate would duplicate the plain left compaction).
            shifted = apply_moves(occupancy, left)
            corner = left + ordered_compaction(shifted, toward="top")
            candidates.append(("consolidate-corner", corner[:cap]))
        best: RearrangementPlan | None = None
        best_key: tuple[int, int, int] | None = None
        for method, moves in candidates:
            if not moves:
                continue
            compacted = apply_moves(occupancy, moves)
            target = largest_empty_rectangle(compacted)
            if target is None or target.area <= baseline:
                continue
            key = (
                -target.area,
                sum(m.src.area for m in moves),
                sum(m.distance for m in moves),
            )
            if best_key is None or key < best_key:
                best = RearrangementPlan(target, moves, method)
                best_key = key
        return best

    # -- strategies ---------------------------------------------------------

    def _compaction_plans(self, occupancy: np.ndarray, height: int,
                          width: int) -> list[RearrangementPlan]:
        plans: list[RearrangementPlan] = []
        for toward in ("left", "top"):
            moves = ordered_compaction(occupancy, toward=toward)
            if not moves:
                continue
            compacted = apply_moves(occupancy, moves)
            target = first_fit(compacted, height, width)
            if target is not None:
                plans.append(
                    RearrangementPlan(target, moves, f"compaction-{toward}")
                )
        return plans

    def _eviction_plan(self, occupancy: np.ndarray, height: int,
                       width: int) -> RearrangementPlan | None:
        """Try target windows anchored at 'corner points' (edges of the
        device and of resident footprints); relocate exactly the
        overlapping functions into remaining free space."""
        rows, cols = occupancy.shape
        if height > rows or width > cols:
            return None
        prints = footprints(occupancy)
        anchor_rows = {0, rows - height}
        anchor_cols = {0, cols - width}
        for rect in prints.values():
            for r in (rect.row - height, rect.row, rect.row_end):
                if 0 <= r <= rows - height:
                    anchor_rows.add(r)
            for c in (rect.col - width, rect.col, rect.col_end):
                if 0 <= c <= cols - width:
                    anchor_cols.add(c)
        rows_sorted = sorted(anchor_rows)
        cols_sorted = sorted(anchor_cols)
        # Bound the search (minimising disturbance is a heuristic, not an
        # exhaustive optimisation): subsample anchors evenly if needed.
        while len(rows_sorted) * len(cols_sorted) > self.max_candidates:
            if len(rows_sorted) >= len(cols_sorted):
                rows_sorted = rows_sorted[::2]
            else:
                cols_sorted = cols_sorted[::2]
        best_plan: RearrangementPlan | None = None
        best_key: tuple[int, int, int] | None = None
        for r in rows_sorted:
            for c in cols_sorted:
                target = Rect(r, c, height, width)
                plan = self._evict_into_free(occupancy, prints, target)
                if plan is None:
                    continue
                key = (
                    plan.disturbed_functions,
                    plan.moved_area,
                    sum(m.distance for m in plan.moves),
                )
                if best_key is None or key < best_key:
                    best_plan, best_key = plan, key
                    if key[0] == 1:
                        # One disturbed function is already minimal
                        # non-trivial disruption; stop searching.
                        return best_plan
        return best_plan

    def _evict_into_free(
        self,
        occupancy: np.ndarray,
        prints: dict[int, Rect],
        target: Rect,
    ) -> RearrangementPlan | None:
        """Move every function overlapping ``target`` somewhere free."""
        blockers = [
            (owner, rect)
            for owner, rect in prints.items()
            if rect.overlaps(target)
        ]
        if not blockers or len(blockers) > self.max_moves:
            return None
        grid = occupancy.copy()
        # Vacate the blockers, then reserve the target with a sentinel so
        # relocated functions cannot land inside it.
        for _, rect in blockers:
            grid[rect.row : rect.row_end, rect.col : rect.col_end] = 0
        sentinel = -1
        grid[target.row : target.row_end, target.col : target.col_end] = sentinel
        moves: list[Move] = []
        for owner, rect in sorted(
            blockers, key=lambda kv: kv[1].area, reverse=True
        ):
            spot = first_fit(grid, rect.height, rect.width)
            if spot is None:
                return None
            grid[spot.row : spot.row_end, spot.col : spot.col_end] = owner
            moves.append(Move(owner, rect, spot))
        # The plan grid vacated all blockers up front; physically they
        # move one at a time, so find an executable order.
        ordered = sequence_moves(occupancy, moves)
        if ordered is None:
            return None
        return RearrangementPlan(target, ordered, "eviction")
