"""Rearrangement planning: which running functions move, and where.

The goal, from the paper's section 1:

    "If a new function cannot be allocated immediately due to lack of
    contiguous free resources, a suitable rearrangement of a subset of
    the functions currently running may solve the problem."

The planner proposes a move list that releases a contiguous ``height`` x
``width`` rectangle, preferring plans that disturb the fewest running
functions (reference [5]'s criterion: "minimising disruptions to running
functions that are to be relocated").  Three strategies are tried, best
plan wins:

* **none-needed** — the request already fits (empty move list);
* **ordered compaction** — slide residents toward an edge (1-D moves);
* **eviction** — pick a target window and relocate exactly the functions
  overlapping it into free space elsewhere (the most surgical plan).

Planning happens on scratch grids; execution belongs to the manager,
which charges reconfiguration time per move and — in the paper's
contribution — performs the moves *concurrently* with execution via
dynamic relocation instead of halting the moved functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.device.geometry import Rect
from repro.perf import PERF
from repro.placement.bitgrid import (
    clear_rect,
    first_fit_bits,
    pack_free_rows,
    set_rect,
    span_mask,
)
from repro.placement.compaction import (
    Move,
    apply_moves,
    compaction_moves,
    footprints,
    ordered_compaction,
    sequence_moves,
)
from repro.placement.free_space import largest_empty_rectangle

#: Distinct-from-everything sentinel for memo lookups whose values may
#: legitimately be ``None``.
_MISS = object()


@dataclass
class RearrangementPlan:
    """A target rectangle plus the moves that make it free."""

    target: Rect
    moves: list[Move] = field(default_factory=list)
    method: str = "none-needed"

    @property
    def moved_area(self) -> int:
        """Total CLB sites that must be relocated."""
        return sum(m.src.area for m in self.moves)

    @property
    def disturbed_functions(self) -> int:
        """Number of running functions the plan touches."""
        return len({m.owner for m in self.moves})

    def __str__(self) -> str:
        return (
            f"<plan {self.method}: target {self.target}, "
            f"{len(self.moves)} moves, {self.moved_area} sites>"
        )


class DefragPlanner:
    """Finds minimal-disturbance rearrangements for a placement request."""

    def __init__(self, max_moves: int = 8, max_candidates: int = 256,
                 max_consolidation_moves: int = 16) -> None:
        if max_moves < 1:
            raise ValueError("max_moves must be positive")
        if max_candidates < 1:
            raise ValueError("max_candidates must be positive")
        if max_consolidation_moves < 1:
            raise ValueError("max_consolidation_moves must be positive")
        self.max_moves = max_moves
        self.max_candidates = max_candidates
        #: proactive consolidations serve no single request, so they may
        #: disturb more functions than a reactive plan is allowed to.
        self.max_consolidation_moves = max_consolidation_moves
        #: per-occupancy-generation shared state (see :meth:`plan`):
        #: packed rows, footprints, compaction results and finished
        #: plans, all pure functions of the grid named by the token.
        self._cache_token: object = None
        self._shared: dict | None = None
        #: content-addressed L2 for the shared state: every entry in the
        #: per-token dict is a pure function of the occupancy *bytes*, so
        #: when the fabric revisits an earlier layout bit-for-bit (place
        #: then finish restores the grid; admission streams do this for
        #: well over half their planning rounds) the whole dict — packed
        #: rows, footprints, compaction sweeps, screens, finished plans —
        #: is replayed instead of recomputed.  Bounded; cleared wholesale
        #: when full (entries are cheap to rebuild).
        self._grid_states: dict[bytes, dict] = {}
        #: pooled scratch arrays for the vectorised screen, keyed by the
        #: (rows, windows) working-set shape.  ``pop``/reinsert keeps
        #: concurrent callers from sharing a buffer.
        self._screen_scratch: dict[
            tuple[int, int], tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}

    def plan(self, occupancy: np.ndarray, height: int, width: int,
             token: object = None) -> RearrangementPlan | None:
        """Best plan freeing a ``height`` x ``width`` rectangle, or None.

        Candidate plans are scored by (functions disturbed, sites moved,
        total move distance) — fewer and smaller disruptions first.

        ``token``, when supplied, must name the occupancy content (the
        free-space engine's generation counter qualifies: it bumps on
        every effective mutation).  Calls sharing a token reuse the
        shape-independent work — row packing, footprints, both
        compaction sweeps — and identical (token, height, width) calls
        return the memoised plan outright; an admission pass probing a
        whole queue against one unchanged fabric then pays for one
        planner run per distinct shape.  Without a token every call
        computes from scratch.
        """
        shared = self._shared_state(token, occupancy)
        if shared is not None and (height, width) in shared["plans"]:
            return shared["plans"][height, width]
        result = self._plan_uncached(occupancy, height, width, shared)
        if shared is not None:
            shared["plans"][height, width] = result
        return result

    def _shared_state(self, token: object,
                      occupancy: np.ndarray) -> dict | None:
        """The per-token scratch dict (fresh when the token moved).

        A token change re-keys the dict by the occupancy *content*
        (:attr:`_grid_states`): distinct tokens naming bit-identical
        grids — the same engine after a place/finish round trip, or two
        fleet members in the same layout — share one dict, and every
        entry (being a pure function of the grid) replays exactly.
        """
        if token is None:
            return None
        if self._cache_token != token:
            self._cache_token = token
            key = occupancy.tobytes()
            shared = self._grid_states.get(key)
            if shared is None:
                if len(self._grid_states) >= 64:
                    self._grid_states.clear()
                shared = {"plans": {}, "compaction": {}, "screens": {}}
                self._grid_states[key] = shared
            self._shared = shared
        return self._shared

    def plan_prefetch(self, occupancy: np.ndarray,
                      shapes: list[tuple[int, int]],
                      token: object) -> None:
        """Batch-resolve :meth:`plan` for several shapes at one token.

        The admission loop calls this with every queue-eligible shape
        still waiting on an unchanged fabric, so the per-item ``plan``
        calls that follow are memo hits.  The answers are identical to
        per-shape calls — the batch merely shares the shape-independent
        work and runs **one** eviction screen over the concatenated
        candidate windows of every shape instead of one vectorised pass
        per shape (the screen's cost is dominated by per-op dispatch,
        not array size).
        """
        if token is None:
            return
        shared = self._shared_state(token, occupancy)
        memo = shared["plans"]
        todo: list[tuple[int, int]] = []
        for shape in shapes:
            if shape not in memo and shape not in todo:
                todo.append(shape)
        if not todo:
            return
        row_bits = self._token_row_bits(occupancy, shared)
        free_area = sum(b.bit_count() for b in row_bits)
        evict_shapes: list[tuple[int, int]] = []
        for height, width in todo:
            spot = first_fit_bits(row_bits, height, width)
            if spot is not None:
                memo[height, width] = RearrangementPlan(
                    Rect(spot[0], spot[1], height, width)
                )
            elif free_area < height * width:
                # No rearrangement can help when the free *area* is too
                # small: defragmentation only consolidates, it cannot
                # create sites.
                memo[height, width] = None
            else:
                evict_shapes.append((height, width))
        if not evict_shapes:
            return
        prints = self._token_prints(occupancy, shared)
        evictions = self._eviction_batch(
            occupancy, prints, row_bits, evict_shapes, shared
        )
        for height, width in evict_shapes:
            memo[height, width] = self._assemble(
                prints, row_bits, height, width, shared,
                evictions.get((height, width)),
            )

    def _token_row_bits(self, occupancy: np.ndarray,
                        shared: dict | None) -> list[int]:
        """Packed free-row bitmasks, shared within a token."""
        if shared is not None and "row_bits" in shared:
            return shared["row_bits"]
        row_bits = pack_free_rows(occupancy)
        if shared is not None:
            shared["row_bits"] = row_bits
        return row_bits

    def _token_prints(self, occupancy: np.ndarray,
                      shared: dict | None) -> dict[int, Rect]:
        """Resident footprints, shared within a token."""
        if shared is not None and "prints" in shared:
            return shared["prints"]
        prints = footprints(occupancy)
        if shared is not None:
            shared["prints"] = prints
        return prints

    def _plan_uncached(self, occupancy: np.ndarray, height: int,
                       width: int,
                       shared: dict | None) -> RearrangementPlan | None:
        """:meth:`plan` body, with the shape-independent pieces read
        from (and published to) ``shared`` when a token is active."""
        row_bits = self._token_row_bits(occupancy, shared)
        spot = first_fit_bits(row_bits, height, width)
        if spot is not None:
            return RearrangementPlan(Rect(spot[0], spot[1], height, width))
        # No rearrangement can help when the free *area* is too small:
        # defragmentation only consolidates, it cannot create sites.
        if sum(b.bit_count() for b in row_bits) < height * width:
            return None
        prints = self._token_prints(occupancy, shared)
        eviction = self._eviction_plan(
            occupancy, prints, row_bits, height, width, shared
        )
        return self._assemble(
            prints, row_bits, height, width, shared, eviction
        )

    def _assemble(self, prints: dict[int, Rect], row_bits: list[int],
                  height: int, width: int, shared: dict | None,
                  eviction: RearrangementPlan | None,
                  ) -> RearrangementPlan | None:
        """Rank the compaction candidates against a ready eviction plan
        (the tail of :meth:`plan`, shared by the batch path)."""
        candidates: list[RearrangementPlan] = []
        candidates.extend(
            self._compaction_plans(prints, row_bits, height, width, shared)
        )
        if eviction is not None:
            candidates.append(eviction)
        candidates = [
            p for p in candidates if len(p.moves) <= self.max_moves
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda p: (
                p.disturbed_functions,
                p.moved_area,
                sum(m.distance for m in p.moves),
            ),
        )

    def plan_consolidation(
        self, occupancy: np.ndarray
    ) -> RearrangementPlan | None:
        """Best consolidation: maximise the largest free rectangle.

        Unlike :meth:`plan`, no pending request drives the search — the
        goal is to compact the resident functions so that *future*
        arrivals find the free space as contiguous as possible (the
        proactive-defragmentation premise).  Candidates are ordered
        compactions toward the left edge, the top edge, and both in
        sequence (corner packing), each truncated to
        ``max_consolidation_moves``; a prefix of a compaction move list
        is always executable in order, so truncation stays collision
        free.  Returns ``None`` unless some candidate *strictly* grows
        the largest free rectangle — consolidation never shrinks it, and
        pointless move lists are never executed.  The returned plan's
        ``target`` is the largest free rectangle of the compacted grid.
        """
        current = largest_empty_rectangle(occupancy)
        baseline = current.area if current is not None else 0
        cap = self.max_consolidation_moves
        candidates: list[tuple[str, list[Move]]] = []
        left = ordered_compaction(occupancy, toward="left")
        top = ordered_compaction(occupancy, toward="top")
        candidates.append(("consolidate-left", left[:cap]))
        candidates.append(("consolidate-top", top[:cap]))
        if left and len(left) < cap:
            # Corner packing: compact left, then compact the result up
            # (skipped when truncation could never reach the top moves —
            # the candidate would duplicate the plain left compaction).
            shifted = apply_moves(occupancy, left)
            corner = left + ordered_compaction(shifted, toward="top")
            candidates.append(("consolidate-corner", corner[:cap]))
        best: RearrangementPlan | None = None
        best_key: tuple[int, int, int] | None = None
        for method, moves in candidates:
            if not moves:
                continue
            compacted = apply_moves(occupancy, moves)
            target = largest_empty_rectangle(compacted)
            if target is None or target.area <= baseline:
                continue
            key = (
                -target.area,
                sum(m.src.area for m in moves),
                sum(m.distance for m in moves),
            )
            if best_key is None or key < best_key:
                best = RearrangementPlan(target, moves, method)
                best_key = key
        return best

    # -- strategies ---------------------------------------------------------

    def _compaction_plans(self, prints: dict[int, Rect],
                          row_bits: list[int], height: int, width: int,
                          shared: dict | None = None,
                          ) -> list[RearrangementPlan]:
        plans: list[RearrangementPlan] = []
        for toward in ("left", "top"):
            # The sweep is shape-independent: within one token both
            # directions are computed once and every probed shape reads
            # the (moves, compacted bitmask) pair from the shared state.
            if shared is not None and toward in shared["compaction"]:
                moves, compacted_bits = shared["compaction"][toward]
            else:
                moves, compacted_bits = compaction_moves(
                    prints, row_bits, toward
                )
                if shared is not None:
                    shared["compaction"][toward] = (moves, compacted_bits)
            # A plan longer than ``max_moves`` is discarded by
            # ``_assemble`` regardless of where the shape would land, so
            # the first-fit probe is skipped outright — on saturated
            # grids the compaction move lists routinely overshoot the
            # cap and this avoids the probe entirely.
            if not moves or len(moves) > self.max_moves:
                continue
            spot = first_fit_bits(compacted_bits, height, width)
            if spot is not None:
                plans.append(
                    RearrangementPlan(
                        Rect(spot[0], spot[1], height, width),
                        moves, f"compaction-{toward}",
                    )
                )
        return plans

    @staticmethod
    def _evict_state(occupancy: np.ndarray, prints: dict[int, Rect],
                     shared: dict | None) -> dict:
        """Shape-independent arrays the eviction scan reads per call.

        Everything here is a pure function of the occupancy grid (the
        footprint coordinate columns, the packed free-space rows, each
        blocker's per-row span masks and the sorted unique blocker
        shapes), so within one planner token the whole bundle is built
        once and every probed shape reuses it.
        """
        if shared is not None and "evict" in shared:
            return shared["evict"]
        print_items = list(prints.items())
        count = len(print_items)
        pr = np.fromiter((kv[1].row for kv in print_items),
                         dtype=np.int64, count=count)
        pc = np.fromiter((kv[1].col for kv in print_items),
                         dtype=np.int64, count=count)
        ph = np.fromiter((kv[1].height for kv in print_items),
                         dtype=np.int64, count=count)
        pw = np.fromiter((kv[1].width for kv in print_items),
                         dtype=np.int64, count=count)
        state = {
            "print_items": print_items,
            "pr": pr, "pc": pc, "ph": ph, "pw": pw,
            "areas": ph * pw,
            # Plain-list mirrors for the per-shape anchor dedup in
            # :meth:`_eviction_windows` — the candidate sets are a few
            # dozen ints, where a Python set beats array machinery.
            "coord_lists": (pr.tolist(), pc.tolist(),
                            ph.tolist(), pw.tolist()),
        }
        rows, cols = occupancy.shape
        if cols <= 64:
            packed = np.packbits(occupancy == 0, axis=1,
                                 bitorder="little")
            buf = np.zeros((rows, 8), dtype=np.uint8)
            buf[:, : packed.shape[1]] = packed
            state["base64"] = buf.view("<u8").ravel()
            spans = (((np.uint64(1) << pw.astype(np.uint64))
                      - np.uint64(1)) << pc.astype(np.uint64))
            rows_idx = np.arange(rows)
            covers = (pr[:, None] <= rows_idx[None, :]) \
                & (rows_idx[None, :] < pr[:, None] + ph[:, None])
            blocker_rows = np.where(covers, spans[:, None], np.uint64(0))
            state["blocker_rows"] = blocker_rows
            # Span sums stay exact in float64 up to 2^53, so narrow
            # grids can fold member masks through BLAS (see
            # :meth:`_screen_windows`).
            state["blocker_f"] = (blocker_rows.astype(np.float64)
                                  if cols <= 52 else None)
            # Unique blocker shapes, ascending (height, width): the
            # screen's band/anchor reductions grow incrementally in
            # exactly that order.
            key = ph * np.int64(65) + pw
            uniq_key, inv = np.unique(key, return_inverse=True)
            state["uh"] = uniq_key // 65
            state["uw"] = uniq_key % 65
            state["inv"] = inv
            # Footprint -> shape one-hot, so the screen can map a
            # window/blocker membership matrix onto the (much smaller)
            # set of windows each *shape* actually blocks.
            onehot = np.zeros((count, len(uniq_key)), dtype=np.int64)
            onehot[np.arange(count), inv] = 1
            state["shape_onehot"] = onehot
        if shared is not None:
            shared["evict"] = state
        return state

    def _eviction_windows(
        self, occupancy: np.ndarray, state: dict, height: int, width: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """Candidate windows for one shape, in scan order.

        Anchors come from 'corner points' (edges of the device and of
        resident footprints), optionally subsampled to
        ``max_candidates``; each window's blocker set is enumerated with
        one separable overlap pass.  Returns ``(member, n_w, wr, wc)``
        filtered to windows with 1..``max_moves`` blockers, or ``None``
        when no window qualifies.
        """
        rows, cols = occupancy.shape
        count = len(state["print_items"])
        pr, pc, ph, pw = (state["pr"], state["pc"],
                          state["ph"], state["pw"])
        prl, pcl, phl, pwl = state["coord_lists"]
        rhi = rows - height
        chi = cols - width
        if rhi < 0 or chi < 0:
            return None
        rset = {0, rhi}
        for p, h in zip(prl, phl):
            for v in (p - height, p, p + h):
                if 0 <= v <= rhi:
                    rset.add(v)
        ra = np.array(sorted(rset), dtype=np.int64)
        cset = {0, chi}
        for p, w in zip(pcl, pwl):
            for v in (p - width, p, p + w):
                if 0 <= v <= chi:
                    cset.add(v)
        ca = np.array(sorted(cset), dtype=np.int64)
        # Bound the search (minimising disturbance is a heuristic, not an
        # exhaustive optimisation): subsample anchors evenly if needed.
        while len(ra) * len(ca) > self.max_candidates:
            if len(ra) >= len(ca):
                ra = ra[::2]
            else:
                ca = ca[::2]
        # Footprint/window overlap, separably per axis; the (R, C, P)
        # AND enumerates every window's blocker set in scan order.
        row_ov = (pr[:, None] < ra[None, :] + height) \
            & (pr[:, None] + ph[:, None] > ra[None, :])
        col_ov = (pc[:, None] < ca[None, :] + width) \
            & (pc[:, None] + pw[:, None] > ca[None, :])
        member = (
            row_ov.T[:, None, :] & col_ov.T[None, :, :]
        ).reshape(-1, count)
        n_all = member.sum(axis=1)
        valid = np.flatnonzero((n_all > 0) & (n_all <= self.max_moves))
        if valid.size == 0:
            return None
        return (
            member[valid],
            n_all[valid],
            np.repeat(ra, len(ca))[valid],
            np.tile(ca, len(ra))[valid],
        )

    def _eviction_plan(self, occupancy: np.ndarray,
                       prints: dict[int, Rect], base_bits: list[int],
                       height: int, width: int,
                       shared: dict | None = None,
                       ) -> RearrangementPlan | None:
        """Try target windows anchored at 'corner points' (edges of the
        device and of resident footprints); relocate exactly the
        overlapping functions into remaining free space.

        The candidate scan is reorganised for speed without changing the
        winner.  The plan key is lexicographic with the disturbance
        count first, so a window disturbing fewer functions always beats
        one disturbing more: windows are bucketed by blocker count
        (counted for the whole anchor grid in one vectorised pass) and
        evaluated strictly lightest-bucket-first.  A vectorised bitmask
        screen (:meth:`_screen_windows`) then discards every window
        containing a blocker with no relocation spot — every window
        whose per-window eviction attempt would fail on some placement —
        so the sequential spot search only runs on the rare survivors.
        """
        rows, cols = occupancy.shape
        if height > rows or width > cols or not prints:
            return None
        state = self._evict_state(occupancy, prints, shared)
        survivors = self._screened_windows(
            occupancy, state, height, width, shared
        )
        if survivors is None:
            return None
        member, n_w, wr, wc = survivors
        return self._eviction_select(
            occupancy, state, base_bits, member, n_w, wr, wc,
            height, width,
        )

    def _screened_windows(
        self, occupancy: np.ndarray, state: dict, height: int,
        width: int, shared: dict | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """One shape's screen survivors, memoised per planner token.

        The keep-set is a pure function of (occupancy grid, shape) — the
        token names the grid via the free-space generation, so within a
        token the candidate windows and their screen verdicts are
        computed once per shape and replayed on every later probe
        (``screen_cache_hits`` counts the replays).
        """
        if shared is not None:
            hit = shared["screens"].get((height, width), _MISS)
            if hit is not _MISS:
                PERF.screen_cache_hits += 1
                return hit
            PERF.screen_cache_misses += 1
        win = self._eviction_windows(occupancy, state, height, width)
        if win is None:
            result = None
        else:
            member, n_w, wr, wc = win
            keeps = self._screen_windows(
                occupancy, state, [(member, wr, wc, height, width)],
            )
            if keeps is None:
                result = win
            elif not keeps[0].any():
                result = None
            else:
                keep = keeps[0]
                result = (
                    member[keep], n_w[keep], wr[keep], wc[keep]
                )
        if shared is not None:
            shared["screens"][height, width] = result
        return result

    def _eviction_batch(
        self, occupancy: np.ndarray, prints: dict[int, Rect],
        base_bits: list[int], shapes: list[tuple[int, int]],
        shared: dict | None,
    ) -> dict[tuple[int, int], RearrangementPlan | None]:
        """:meth:`_eviction_plan` for many shapes, one screen pass.

        Every shape's candidate windows are built as usual, then the
        feasibility screen runs once over their concatenation — its
        per-window verdicts do not depend on what other windows are in
        the batch, so each shape's survivors (and hence its plan) are
        identical to a per-shape call.
        """
        rows, cols = occupancy.shape
        results: dict[tuple[int, int], RearrangementPlan | None] = {}
        state = self._evict_state(occupancy, prints, shared)
        screens = shared["screens"] if shared is not None else None
        survivors: dict[tuple[int, int], tuple | None] = {}
        groups: list[tuple] = []
        wins: dict[tuple[int, int], tuple] = {}
        for height, width in shapes:
            if screens is not None:
                hit = screens.get((height, width), _MISS)
                if hit is not _MISS:
                    PERF.screen_cache_hits += 1
                    survivors[height, width] = hit
                    continue
                PERF.screen_cache_misses += 1
            if height > rows or width > cols or not prints:
                survivors[height, width] = None
                continue
            win = self._eviction_windows(occupancy, state, height, width)
            if win is None:
                survivors[height, width] = None
                continue
            wins[height, width] = win
            groups.append((win[0], win[2], win[3], height, width))
        if wins:
            keeps = self._screen_windows(occupancy, state, groups)
            for g, (height, width) in enumerate(wins):
                member, n_w, wr, wc = wins[height, width]
                if keeps is None:
                    survivors[height, width] = (member, n_w, wr, wc)
                elif not keeps[g].any():
                    survivors[height, width] = None
                else:
                    keep = keeps[g]
                    survivors[height, width] = (
                        member[keep], n_w[keep], wr[keep], wc[keep]
                    )
        for (height, width), win in survivors.items():
            if screens is not None and (height, width) not in screens:
                screens[height, width] = win
            if win is None:
                results[height, width] = None
                continue
            member, n_w, wr, wc = win
            results[height, width] = self._eviction_select(
                occupancy, state, base_bits, member, n_w, wr, wc,
                height, width,
            )
        return results

    def _eviction_select(
        self, occupancy: np.ndarray, state: dict, base_bits: list[int],
        member: np.ndarray, n_w: np.ndarray, wr: np.ndarray,
        wc: np.ndarray, height: int, width: int,
    ) -> RearrangementPlan | None:
        """Pick the winning window among the screen survivors.

        One disturbed function is already minimal non-trivial
        disruption; the first single-blocker window (in scan order)
        with a workable relocation wins outright.  Heavier buckets are
        ranked by (sites moved, distance) with scan order breaking
        ties, and the best *sequenceable* candidate wins — the same
        winner the one-window-at-a-time scan selected.

        The (sites moved) rank is lazy: a window's moved area is the
        sum of its blockers' footprint areas — every blocker yields
        exactly one move whose source is its footprint — so it is known
        from the member matrix *before* any relocation search runs.
        Windows are grouped by moved area ascending and only groups
        reached before a winner pay for their move lists, which is most
        of the eviction cost on rejection-heavy streams.
        """
        print_items = state["print_items"]
        areas = state["areas"].tolist()
        # Survivor counts are tiny after the screen (a handful per
        # shape), so the walk runs on plain Python containers — per-
        # bucket numpy dispatches would dominate the actual work.
        w_idx, p_idx = np.nonzero(member)
        n = member.shape[0]
        blockers_of: list[list[int]] = [[] for _ in range(n)]
        for w, p in zip(w_idx.tolist(), p_idx.tolist()):
            blockers_of[w].append(p)
        wr_l = wr.tolist()
        wc_l = wc.tolist()
        n_l = n_w.tolist()
        order = sorted(range(n), key=lambda i: (n_l[i], i))
        pos = 0
        while pos < len(order):
            seq = order[pos]
            bucket = n_l[seq]
            if bucket == 1:
                pos += 1
                target = Rect(wr_l[seq], wc_l[seq], height, width)
                blockers = [print_items[i] for i in blockers_of[seq]]
                moves = self._evict_moves(base_bits, blockers, target)
                if moves is None:
                    continue
                ordered = sequence_moves(occupancy, moves)
                if ordered is not None:
                    return RearrangementPlan(target, ordered, "eviction")
                continue
            # One whole bucket, grouped by moved area ascending; only
            # groups reached before a winner pay for their move lists.
            stop = pos
            while stop < len(order) and n_l[order[stop]] == bucket:
                stop += 1
            idxs = order[pos:stop]
            pos = stop
            area_of = {
                i: sum(areas[p] for p in blockers_of[i]) for i in idxs
            }
            by_area = sorted(idxs, key=lambda i: (area_of[i], i))
            g = 0
            while g < len(by_area):
                area = area_of[by_area[g]]
                scored: list[tuple[int, int, Rect, list[Move]]] = []
                while g < len(by_area):
                    seq = by_area[g]
                    if area_of[seq] != area:
                        break
                    g += 1
                    target = Rect(wr_l[seq], wc_l[seq], height, width)
                    blockers = [print_items[i] for i in blockers_of[seq]]
                    moves = self._evict_moves(base_bits, blockers, target)
                    if moves is None:
                        continue
                    distance = sum(m.distance for m in moves)
                    scored.append((distance, seq, target, moves))
                scored.sort(key=lambda entry: (entry[0], entry[1]))
                for _, _, target, moves in scored:
                    ordered = sequence_moves(occupancy, moves)
                    if ordered is not None:
                        return RearrangementPlan(
                            target, ordered, "eviction"
                        )
        return None

    def _screen_windows(
        self,
        occupancy: np.ndarray,
        state: dict,
        groups: list[tuple],
    ) -> list[np.ndarray] | None:
        """Which windows could possibly relocate *all* their blockers.

        ``groups`` is a list of ``(member, wr, wc, height, width)``
        window batches — one per probed shape — screened together.
        Builds every candidate window's vacated grid as one row of
        uint64 free-column masks (blockers lifted, its group's target
        reserved) and, per distinct blocker shape, answers "does this
        shape fit somewhere?" for all windows of all groups at once via
        shifted-AND band reductions.  The vacated grid over-states the
        free space at every placement step except the first (earlier
        relocations only consume sites), so a shape with no spot here
        has no spot in the real sequential attempt either — the filter
        never drops a window the per-window eviction search could have
        used.  Each window's verdict reads only its own row, so batching
        groups changes nothing but the number of numpy dispatches.
        Returns one boolean keep-mask per group, or ``None`` when the
        device is too wide for the uint64 fast path (the caller then
        evaluates every window sequentially).

        ``state`` carries the occupancy-only inputs
        (:meth:`_evict_state`): the packed free rows, per-blocker span
        masks and the unique blocker shapes sorted ascending, which is
        exactly the order the band/anchor reductions grow in.
        """
        rows, cols = occupancy.shape
        if cols > 64:
            return None
        member = (groups[0][0] if len(groups) == 1
                  else np.concatenate([g[0] for g in groups], axis=0))
        # Fold each window's member span masks in one matmul: footprints
        # are disjoint rectangles, so their masks never share a bit and
        # summing them IS their union; blocker sites are occupied, hence
        # never set in the free-space base, so the final merge is a
        # plain OR.  Narrow grids run the product through BLAS — float64
        # sums of sub-2^52 masks are exact — wide ones use the integer
        # path.  Either way the working set stays (windows x rows).
        blocker_f = state["blocker_f"]
        if blocker_f is not None:
            lifted = (member.astype(np.float64) @ blocker_f) \
                .astype(np.uint64)
        else:
            lifted = member.astype(np.uint64) @ state["blocker_rows"]
        bits = state["base64"][None, :] | lifted
        # Reserve each group's target window (heights differ per group,
        # so the span clearing is per-batch).
        offset = 0
        bounds: list[slice] = []
        for gmember, wr, wc, height, width in groups:
            n = gmember.shape[0]
            tspan = np.uint64((1 << width) - 1) << wc.astype(np.uint64)
            rowsel = wr[:, None] + np.arange(height)[None, :]
            bits[np.arange(offset, offset + n)[:, None], rowsel] \
                &= ~tspan[:, None]
            bounds.append(slice(offset, offset + n))
            offset += n
        windows = offset
        PERF.screen_calls += 1
        PERF.screen_windows += windows
        # One "does shape (h, w) fit anywhere?" bit per (shape, window).
        # Row bands and column-run anchors both grow *incrementally*
        # (heights and then widths visited in ascending order — the
        # sort order of ``uh``/``uw``), so each unit of height or width
        # costs a single vectorised op over all windows no matter how
        # many shapes share it.  Shapes of blockers in no window cost
        # two extra ops here and gate nothing below (their member
        # columns are all False).  The reductions run transposed —
        # (rows, windows), windows contiguous — so every slab the ops
        # touch is a contiguous block of whole rows.  The three
        # (rows, windows) scratch slabs are pooled per working-set shape
        # across calls (:attr:`_screen_scratch`) — within one admission
        # round the batch sizes repeat, so steady state allocates
        # nothing.
        scratch = self._screen_scratch.pop((rows, windows), None)
        if scratch is None:
            bits_t = np.empty((rows, windows), dtype=np.uint64)
            bbuf_pool = np.empty_like(bits_t)
            sbuf = np.empty_like(bits_t)
        else:
            bits_t, bbuf_pool, sbuf = scratch
        np.copyto(bits_t, bits.T)
        uh, uw, inv = state["uh"], state["uw"], state["inv"]
        shapes = len(uh)
        # Only shapes blocking some window of *this* batch gate a
        # verdict; skipping the rest caps the band/anchor growth at the
        # batch's largest active shape.  ``fits`` defaults to True so
        # the skipped rows (never selected by a True member bit) stay
        # inert in the verdict gather below.
        active = sorted(set(inv[member.any(axis=0)].tolist()))
        fits = np.ones((shapes, windows), dtype=bool)
        band = bits_t        # AND of rows r..r+covered_h-1 per row r
        bbuf: np.ndarray | None = None
        covered_h = 1
        ai = 0
        n_active = len(active)
        while ai < n_active:
            s = int(active[ai])
            bh = int(uh[s])
            while covered_h < bh:
                n = rows - covered_h
                if bbuf is None:
                    bbuf = bbuf_pool
                    np.bitwise_and(bits_t[:n], bits_t[covered_h:],
                                   out=bbuf[:n])
                    band = bbuf
                else:
                    np.bitwise_and(band[:n], bits_t[covered_h:],
                                   out=band[:n])
                covered_h += 1
            bandw = rows - bh + 1
            anchors = band
            abuf: np.ndarray | None = None
            covered_w = 1
            while ai < n_active and int(uh[active[ai]]) == bh:
                s = int(active[ai])
                bw = int(uw[s])
                while covered_w < bw:
                    shifted = sbuf[:bandw]
                    np.right_shift(band[:bandw],
                                   np.uint64(covered_w), out=shifted)
                    if abuf is None:
                        abuf = band[:bandw] & shifted
                        anchors = abuf
                    else:
                        np.bitwise_and(abuf, shifted, out=abuf)
                    covered_w += 1
                fits[s] = np.bitwise_or.reduce(
                    anchors[:bandw], axis=0
                ) != 0
                ai += 1
        # A window survives unless it contains a blocker whose shape has
        # no relocation spot at all.
        bad = (member & ~fits[inv].T).any(axis=1)
        if len(self._screen_scratch) >= 8:
            # Window counts vary per round; don't hoard stale sizes.
            self._screen_scratch.clear()
        self._screen_scratch[rows, windows] = (bits_t, bbuf_pool, sbuf)
        return [~bad[b] for b in bounds]

    def _evict_moves(
        self,
        base_bits: list[int],
        blockers: list[tuple[int, Rect]],
        target: Rect,
    ) -> list[Move] | None:
        """Relocation moves clearing ``target``, or None when some
        blocker has nowhere to go.

        Works on packed free-column bitmasks: vacate the blockers,
        reserve the target, then first-fit each blocker largest-first —
        the exact scratch-grid procedure of the eviction strategy, minus
        the numpy copies.  Sequencing is the caller's job.
        """
        PERF.evict_moves_calls += 1
        bits = list(base_bits)
        for _, rect in blockers:
            set_rect(bits, rect.row, rect.row_end,
                     span_mask(rect.col, rect.width))
        clear_rect(bits, target.row, target.row_end,
                   span_mask(target.col, target.width))
        moves: list[Move] = []
        for owner, rect in sorted(
            blockers, key=lambda kv: kv[1].area, reverse=True
        ):
            spot = first_fit_bits(bits, rect.height, rect.width)
            if spot is None:
                return None
            dst = Rect(spot[0], spot[1], rect.height, rect.width)
            clear_rect(bits, dst.row, dst.row_end,
                       span_mask(dst.col, dst.width))
            moves.append(Move(owner, rect, dst))
        return moves
