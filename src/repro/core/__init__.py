"""The paper's contribution: dynamic relocation and on-line management.

* ``procedure`` — the Fig. 2 / Fig. 4 step plans with ordering checks;
* ``relocation`` — the live-circuit relocation engine (all four
  implementation cases plus the naive counter-example);
* ``gated_clock`` — analysis helpers for the auxiliary relocation
  circuit of Fig. 3;
* ``routing_relocation`` — duplicate-then-disconnect path moves (Fig. 5);
* ``cost`` — frames -> Boundary-Scan seconds (the 22.6 ms model);
* ``manager`` / ``defrag`` — the on-line logic-space manager and its
  rearrangement planner;
* ``defrag_policy`` — when to defragment: reactive and proactive
  (threshold / idle-port) trigger policies for background consolidation;
* ``tool`` — the rearrangement & programming tool of Fig. 7 (API + CLI).
"""

from .active_replication import (
    ActiveReplicationTester,
    CellTestResult,
    RotationReport,
    StuckAtFault,
    TEST_LUTS,
)
from .cost import CostModel, CostParameters, PlanCost, StepCost
from .defrag import DefragPlanner, RearrangementPlan
from .defrag_policy import (
    DEFRAG_POLICY_NAMES,
    DefragPolicy,
    IdleDefrag,
    NeverDefrag,
    OnFailureDefrag,
    ThresholdDefrag,
    make_defrag_policy,
)
from .function_move import FunctionMoveReport, FunctionRelocator
from .gated_clock import (
    AuxCircuitState,
    aux_mux,
    coherency_after,
    exhaustive_coherency_check,
    naive_failure_example,
    replica_clock_enable,
    run_aux_sequence,
    step_aux,
    step_naive,
)
from .manager import (
    DefragOutcome,
    LogicSpaceManager,
    MoveExecution,
    PlacementOutcome,
    RearrangePolicy,
)
from .procedure import (
    MIN_WAIT_CYCLES,
    ProcedureStep,
    RelocationPlan,
    RelocationVeto,
    StepClass,
    StepKind,
    build_plan,
)
from .relocation import (
    RelocationEngine,
    RelocationReport,
    StepTrace,
    make_lockstep_engine,
)
from .routing_relocation import (
    PathPhase,
    PathRelocationReport,
    RoutingRelocator,
)
from .tool import (
    ExecutionReport,
    GeneratedJob,
    RearrangementTool,
    RelocationJob,
)

__all__ = [
    "ActiveReplicationTester",
    "AuxCircuitState",
    "CellTestResult",
    "CostModel",
    "CostParameters",
    "DEFRAG_POLICY_NAMES",
    "DefragOutcome",
    "DefragPlanner",
    "DefragPolicy",
    "IdleDefrag",
    "NeverDefrag",
    "OnFailureDefrag",
    "ThresholdDefrag",
    "make_defrag_policy",
    "FunctionMoveReport",
    "FunctionRelocator",
    "RotationReport",
    "StuckAtFault",
    "TEST_LUTS",
    "aux_mux",
    "coherency_after",
    "exhaustive_coherency_check",
    "naive_failure_example",
    "replica_clock_enable",
    "run_aux_sequence",
    "step_aux",
    "step_naive",
    "ExecutionReport",
    "GeneratedJob",
    "LogicSpaceManager",
    "MIN_WAIT_CYCLES",
    "MoveExecution",
    "PathPhase",
    "PathRelocationReport",
    "PlacementOutcome",
    "PlanCost",
    "ProcedureStep",
    "RearrangePolicy",
    "RearrangementPlan",
    "RearrangementTool",
    "RelocationEngine",
    "RelocationJob",
    "RelocationPlan",
    "RelocationReport",
    "RelocationVeto",
    "RoutingRelocator",
    "StepClass",
    "StepCost",
    "StepKind",
    "StepTrace",
    "build_plan",
    "make_lockstep_engine",
]
