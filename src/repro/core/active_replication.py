"""On-line concurrent testing through dynamic relocation.

The relocation mechanism was first developed by the same authors for
on-line FPGA self-test (reference [8] of the paper: "Active Replication:
Towards a Truly SRAM-based FPGA On-Line Concurrent Testing"), and the
conclusion lists extending the tool's functionality as further work.
This module implements that extension on top of the relocation engine:

* a **test rotation** sweeps the CLB array; occupied cells are first
  relocated to spare cells (transparently, via the Fig. 2/4 procedures),
  then the vacated CLB runs a built-in self-test (every LUT input vector
  against a set of test configurations);
* a **fault model** (stuck-at cell outputs) is injected at fabric sites;
  a fault is *detected* when the observed response differs from the
  expected response of any test configuration;
* the whole sweep happens while the application keeps running — the same
  transparency guarantee as any other relocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.device.geometry import CELLS_PER_CLB, CellCoord, ClbCoord

from .procedure import RelocationVeto
from .relocation import RelocationEngine, RelocationReport

#: Test configurations loaded into each cell under test: a pattern-
#: sensitive pair (checkerboard LUTs) plus the all-ones/all-zeros
#: configurations that expose stuck-at faults on every input vector.
TEST_LUTS = (0xAAAA, 0x5555, 0xFFFF, 0x0000)


@dataclass(frozen=True)
class StuckAtFault:
    """A physical defect: the cell's output is stuck at ``value``."""

    site: CellCoord
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")


@dataclass
class CellTestResult:
    """BIST outcome for one physical cell."""

    site: CellCoord
    tested: bool
    faulty: bool


@dataclass
class RotationReport:
    """Outcome of one full (or partial) test rotation."""

    clbs_tested: int = 0
    cells_tested: int = 0
    relocations: list[RelocationReport] = field(default_factory=list)
    detected: list[StuckAtFault] = field(default_factory=list)
    skipped: list[ClbCoord] = field(default_factory=list)

    @property
    def relocation_seconds(self) -> float:
        """Port time spent vacating CLBs under test."""
        return sum(r.total_seconds for r in self.relocations)

    @property
    def transparent(self) -> bool:
        """True when every vacating relocation was transparent."""
        return all(r.transparent for r in self.relocations)


class ActiveReplicationTester:
    """Rotates a self-test over the array, relocating live cells away."""

    def __init__(self, engine: RelocationEngine) -> None:
        self.engine = engine
        self.design = engine.design
        self.fabric = engine.design.fabric
        #: injected physical faults by site.
        self.faults: dict[CellCoord, StuckAtFault] = {}
        self.tested: set[ClbCoord] = set()

    # -- fault injection ----------------------------------------------------

    def inject_fault(self, fault: StuckAtFault) -> None:
        """Plant a stuck-at defect at a physical site."""
        self.faults[fault.site] = fault

    def clear_faults(self) -> None:
        """Remove all injected defects."""
        self.faults.clear()

    # -- BIST ------------------------------------------------------------------

    def _cell_response(self, site: CellCoord, lut: int, vector: int) -> int:
        """Observed output of a (possibly faulty) cell under test."""
        fault = self.faults.get(site)
        if fault is not None:
            return fault.value
        return (lut >> vector) & 1

    def test_cell(self, site: CellCoord) -> CellTestResult:
        """Exhaustive BIST of one free cell: every test LUT, every
        input vector; compares observed and expected responses."""
        if self.fabric.cell_config(site).used:
            raise RelocationVeto(f"cell {site} is in use; vacate it first")
        for lut in TEST_LUTS:
            for vector in range(16):
                expected = (lut >> vector) & 1
                if self._cell_response(site, lut, vector) != expected:
                    return CellTestResult(site, True, True)
        return CellTestResult(site, True, False)

    # -- rotation ----------------------------------------------------------------

    def vacate_clb(self, clb: ClbCoord,
                   report: RotationReport) -> bool:
        """Relocate every live cell out of ``clb`` (transparently).

        Returns False when some occupant cannot be moved (no free cell
        elsewhere, LUT/RAM restriction, ...) — the CLB is then skipped,
        never silently half-tested.
        """
        occupants = [
            name
            for name, site in self.design.placement.items()
            if site.clb == clb
        ]
        for name in occupants:
            try:
                # Destination chosen automatically; exclude this CLB by
                # searching from a neighbour.
                dst = self._destination_outside(clb, name)
                reloc = self.engine.relocate(name, dst)
            except RelocationVeto:
                return False
            report.relocations.append(reloc)
        return True

    def _destination_outside(self, clb: ClbCoord, cell_name: str) -> CellCoord:
        """A free cell in some other CLB, nearest to the one under test."""
        limit = self.fabric.device.clb_rows + self.fabric.device.clb_cols
        for dist in range(1, limit):
            for dr in range(-dist, dist + 1):
                dc = dist - abs(dr)
                for signed in {dc, -dc}:
                    coord = ClbCoord(clb.row + dr, clb.col + signed)
                    if not self.fabric.bounds.contains(coord):
                        continue
                    config = self.fabric.clb(coord)
                    free = config.free_cell_indices()
                    if free:
                        return CellCoord(coord.row, coord.col, free[0])
        raise RelocationVeto(f"no free cell outside {clb}")

    def rotate(self, clbs: list[ClbCoord] | None = None,
               max_clbs: int | None = None) -> RotationReport:
        """Test the given CLBs (default: the whole array, column-major —
        the natural frame order), vacating occupied ones first."""
        if clbs is None:
            clbs = [
                ClbCoord(row, col)
                for col in range(self.fabric.device.clb_cols)
                for row in range(self.fabric.device.clb_rows)
            ]
        report = RotationReport()
        for clb in clbs:
            if max_clbs is not None and report.clbs_tested >= max_clbs:
                break
            if clb in self.tested:
                continue
            if not self.fabric.clb(clb).is_free:
                if not self.vacate_clb(clb, report):
                    report.skipped.append(clb)
                    continue
            for index in range(CELLS_PER_CLB):
                site = CellCoord(clb.row, clb.col, index)
                result = self.test_cell(site)
                report.cells_tested += 1
                if result.faulty:
                    report.detected.append(self.faults[site])
            self.tested.add(clb)
            report.clbs_tested += 1
        return report

    def coverage(self) -> float:
        """Fraction of the CLB array tested so far."""
        return len(self.tested) / self.fabric.device.clb_count
