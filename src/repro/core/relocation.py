"""The dynamic relocation engine — the paper's central mechanism.

Executes a :class:`~repro.core.procedure.RelocationPlan` against a live,
simulating design: every step performs the corresponding netlist/fabric
mutation between clock cycles, the simulator keeps running throughout,
and a golden reference (never relocated) can run in lockstep to prove
transparency — the reproduction of the paper's "no loss of information
or functional disturbance was observed".

The engine covers all of the paper's implementation cases:

* combinational cells — two-phase copy (Fig. 2);
* synchronous free-running-clock cells — two-phase copy plus a capture
  wait, during which "all its flip-flops acquire the same state
  information";
* synchronous gated-clock cells — the full Fig. 4 flow through the
  auxiliary relocation circuit of Fig. 3 (one OR gate + one 2:1 mux in a
  nearby free CLB);
* asynchronous latch cells — same circuit and sequence, with the latch
  gate standing in for the clock enable;
* ``use_aux=False`` runs the *naive* copy on gated cells, demonstrating
  the state-coherency failure that motivates the auxiliary circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.device.clb import CellMode, LogicCellConfig
from repro.device.geometry import CellCoord, ClbCoord
from repro.device.routing import RoutingError
from repro.netlist.cells import Cell, LUT_BUF, LUT_CONST0, LUT_CONST1, mux21, or2
from repro.netlist.circuit import Circuit
from repro.netlist.simulator import CycleSimulator, DriveConflict, LockstepChecker
from repro.netlist.synth import MappedDesign

from .cost import CostModel, PlanCost
from .procedure import (
    ProcedureStep,
    RelocationPlan,
    RelocationVeto,
    StepKind,
    build_plan,
)

#: Stimulus callback: cycle number -> primary-input values for that cycle.
Stimulus = Callable[[int], dict[str, int]]


@dataclass
class StepTrace:
    """Execution record of one plan step."""

    step: ProcedureStep
    start_cycle: int
    cycles: int
    frames: int
    words: int
    seconds: float


@dataclass
class RelocationReport:
    """Everything observed while relocating one cell."""

    cell: str
    mode: CellMode
    src: CellCoord
    dst: CellCoord
    aux: ClbCoord | None
    steps: list[StepTrace] = field(default_factory=list)
    conflicts: list[DriveConflict] = field(default_factory=list)
    mismatches: list[tuple[int, str, int, int]] = field(default_factory=list)
    rerouted_delay_before_ns: float = 0.0
    rerouted_delay_after_ns: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Reconfiguration-port time of the whole relocation."""
        return sum(s.seconds for s in self.steps)

    @property
    def total_cycles(self) -> int:
        """Application clock cycles elapsed during the relocation."""
        return sum(s.cycles for s in self.steps)

    @property
    def total_frames(self) -> int:
        """Configuration frames written."""
        return sum(s.frames for s in self.steps)

    @property
    def transparent(self) -> bool:
        """True when no glitch (drive conflict) and no output divergence
        was observed — the paper's success criterion."""
        return not self.conflicts and not self.mismatches

    def __str__(self) -> str:
        status = "transparent" if self.transparent else (
            f"{len(self.conflicts)} conflicts, {len(self.mismatches)} mismatches"
        )
        return (
            f"<relocation {self.cell} {self.src}->{self.dst} "
            f"({self.mode.value}): {self.total_seconds * 1e3:.2f} ms, {status}>"
        )


class RelocationEngine:
    """Relocates live logic cells of one mapped design."""

    def __init__(
        self,
        design: MappedDesign,
        sim: CycleSimulator,
        cost_model: CostModel | None = None,
        checker: LockstepChecker | None = None,
        stimulus: Stimulus | None = None,
        cycles_per_config_step: int = 2,
        honor_min_waits: bool = True,
    ) -> None:
        if checker is not None and checker.dut is not sim:
            raise ValueError("checker must wrap the engine's simulator")
        self.design = design
        self.sim = sim
        self.cost = cost_model or CostModel(design.fabric.device)
        self.checker = checker
        self.stimulus: Stimulus = stimulus or (lambda cycle: {})
        if cycles_per_config_step < 1:
            raise ValueError("cycles_per_config_step must be >= 1")
        self.cycles_per_config_step = cycles_per_config_step
        #: ablation knob: False ignores the "> 2 CLK" / "> 1 CLK" waits
        #: of Fig. 4 (and all inter-step clocking), demonstrating that
        #: the waits are load-bearing for state capture.
        self.honor_min_waits = honor_min_waits

    # -- site selection ---------------------------------------------------

    def find_destination(self, cell_name: str,
                         max_distance: int | None = None) -> CellCoord:
        """A free cell site near the original, per the paper's guidance
        that "the relocation of the CLBs should be performed to nearby
        CLBs" (section 3)."""
        src = self.design.site_of(cell_name)
        site = self.design.fabric.find_free_cell_near(src.clb, max_distance)
        if site is None:
            raise RelocationVeto(f"no free cell near {src} for {cell_name!r}")
        return site

    def _find_aux_clb(self, dst: CellCoord, src: CellCoord) -> ClbCoord:
        """A nearby CLB with two free cells for the OR gate and the mux."""
        fabric = self.design.fabric
        best: ClbCoord | None = None
        best_dist = 10 ** 9
        for row in range(fabric.device.clb_rows):
            for col in range(fabric.device.clb_cols):
                coord = ClbCoord(row, col)
                if coord in (dst.clb, src.clb):
                    continue
                clb = fabric._clbs.get(coord)
                free = 4 if clb is None else len(clb.free_cell_indices())
                if free >= 2:
                    dist = coord.manhattan(dst.clb)
                    if dist < best_dist:
                        best, best_dist = coord, dist
        if best is None:
            raise RelocationVeto(
                "no free CLB available for the auxiliary relocation circuit"
            )
        return best

    # -- execution ----------------------------------------------------------

    def _advance(self, cycles: int) -> None:
        """Run the application clock while a step's reconfiguration loads."""
        for _ in range(cycles):
            inputs = self.stimulus(self.sim.cycle)
            if self.checker is not None:
                self.checker.step(inputs)
            else:
                self.sim.step(inputs)

    def relocate(self, cell_name: str, dst: CellCoord | None = None,
                 use_aux: bool = True) -> RelocationReport:
        """Relocate one live cell; returns the full observation record.

        ``dst=None`` picks the nearest free cell.  ``use_aux=False``
        applies the naive two-phase copy even to gated-clock/latch cells
        — the paper's counter-example (state loss whenever CE is inactive
        during the procedure).
        """
        circuit = self.sim.circuit
        fabric = self.design.fabric
        if cell_name not in circuit.cells:
            raise RelocationVeto(f"no cell {cell_name!r} in the live circuit")
        cell = circuit.cells[cell_name]
        if not cell.mode.relocatable:
            raise RelocationVeto(
                f"{cell_name!r} is a LUT/RAM; on-line relocation would "
                "require stopping the system (paper, section 2)"
            )
        src = self.design.site_of(cell_name)
        if dst is None:
            dst = self.find_destination(cell_name)
        if fabric.cell_config(dst).used:
            raise RelocationVeto(f"destination cell {dst} is occupied")
        needs_aux = use_aux and cell.mode in (
            CellMode.FF_GATED_CLOCK,
            CellMode.LATCH,
        )
        aux_clb = self._find_aux_clb(dst, src) if needs_aux else None
        ce_col = self._ce_driver_column(cell)
        plan = build_plan(
            cell_name,
            cell.mode if needs_aux else self._naive_mode(cell.mode),
            signal_columns=self.design.signal_columns(cell_name),
            src_col=src.col,
            dst_col=dst.col,
            aux_col=aux_clb.col if aux_clb else None,
            ce_col=ce_col,
        )
        self._check_lut_ram_columns(plan)
        plan_cost = self.cost.plan_cost(plan)
        report = RelocationReport(cell_name, cell.mode, src, dst, aux_clb)
        ctx = _Context(cell_name, cell, src, dst, aux_clb, needs_aux)
        conflicts_before = len(self.sim.conflicts)
        mismatches_before = (
            len(self.checker.mismatches) if self.checker else 0
        )
        for step, step_cost in zip(plan.steps, plan_cost.steps):
            start = self.sim.cycle
            self._apply_step(step, ctx)
            if self.honor_min_waits:
                cycles = max(step.min_wait_cycles, self.cycles_per_config_step)
            else:
                cycles = 0
            self._advance(cycles)
            report.steps.append(
                StepTrace(
                    step,
                    start,
                    cycles,
                    step_cost.frames,
                    step_cost.words,
                    step_cost.seconds,
                )
            )
        self._reroute_cell(cell_name, report)
        report.conflicts = self.sim.conflicts[conflicts_before:]
        if self.checker is not None:
            report.mismatches = self.checker.mismatches[mismatches_before:]
        return report

    def relocate_halting(self, cell_name: str,
                         dst: CellCoord | None = None) -> RelocationReport:
        """Relocate by *stopping the system* — the state of the art the
        paper improves on ("no physical execution of these
        rearrangements is proposed other than halting those functions,
        stopping the normal system operation").

        The circuit's clock is held for the whole procedure (no cycles
        advance), the flip-flop state is carried over by configuration
        readback/writeback, and operation resumes afterwards.  The
        result is functionally correct but the application loses
        ``report.total_seconds`` of wall-clock time — exactly the cost
        the concurrent procedure eliminates.
        """
        circuit = self.sim.circuit
        fabric = self.design.fabric
        if cell_name not in circuit.cells:
            raise RelocationVeto(f"no cell {cell_name!r} in the live circuit")
        cell = circuit.cells[cell_name]
        if not cell.mode.relocatable:
            raise RelocationVeto(f"{cell_name!r} is a LUT/RAM")
        src = self.design.site_of(cell_name)
        if dst is None:
            dst = self.find_destination(cell_name)
        if fabric.cell_config(dst).used:
            raise RelocationVeto(f"destination cell {dst} is occupied")
        # Halting needs no auxiliary circuit and no parallel phases: one
        # readback of the source column, one write of the destination
        # column, plus rerouting of the nets — modelled as the two-phase
        # plan's configuration traffic without the waits.
        plan = build_plan(
            cell_name,
            self._naive_mode(cell.mode),
            signal_columns=self.design.signal_columns(cell_name),
            src_col=src.col,
            dst_col=dst.col,
        )
        plan_cost = self.cost.plan_cost(plan)
        report = RelocationReport(cell_name, cell.mode, src, dst, None)
        # System halted: carry state via readback, rebind, resume.
        state = self.sim.state.get(cell_name, cell.init_state)
        self.design.unbind_cell(cell_name)
        fabric.place_cell(dst, LogicCellConfig(mode=cell.mode, lut=cell.lut))
        self.design.placement[cell_name] = dst
        if cell.sequential:
            self.sim.state[cell_name] = state
        for step, step_cost in zip(plan.steps, plan_cost.steps):
            report.steps.append(
                StepTrace(step, self.sim.cycle, 0, step_cost.frames,
                          step_cost.words, step_cost.seconds)
            )
        self._reroute_cell(cell_name, report)
        return report

    @staticmethod
    def _naive_mode(mode: CellMode) -> CellMode:
        """The plan shape used when the aux circuit is (wrongly) skipped."""
        if mode in (CellMode.FF_GATED_CLOCK, CellMode.LATCH):
            return CellMode.FF_FREE_CLOCK
        return mode

    def _ce_driver_column(self, cell: Cell) -> int | None:
        """Column of the cell driving the CE net (None for primary inputs)."""
        if cell.ce is None:
            return None
        for name, candidate in self.sim.circuit.cells.items():
            if candidate.output == cell.ce and name in self.design.placement:
                return self.design.placement[name].col
        return None

    def _check_lut_ram_columns(self, plan: RelocationPlan) -> None:
        """Enforce: "LUT/RAMs should not lie in any column that could be
        affected by the relocation procedure" (section 2)."""
        ram_columns = self.design.fabric.lut_ram_columns()
        clash = ram_columns & plan.touched_columns
        if clash:
            raise RelocationVeto(
                f"relocation of {plan.cell!r} touches column(s) "
                f"{sorted(clash)} holding LUT/RAM cells"
            )

    # -- step application -----------------------------------------------------

    def _apply_step(self, step: ProcedureStep, ctx: "_Context") -> None:
        handler = {
            StepKind.COPY_CONFIG: self._do_copy_config,
            StepKind.CONNECT_AUX: self._do_connect_aux,
            StepKind.PARALLEL_INPUTS: self._do_nothing,
            StepKind.ACTIVATE_CONTROLS: self._do_activate_controls,
            StepKind.WAIT_CAPTURE: self._do_nothing,
            StepKind.DEACTIVATE_CE_CONTROL: self._do_deactivate_ce,
            StepKind.CONNECT_CE: self._do_connect_ce,
            StepKind.DEACTIVATE_RELOC_CONTROL: self._do_deactivate_reloc,
            StepKind.DISCONNECT_AUX: self._do_disconnect_aux,
            StepKind.PARALLEL_OUTPUTS: self._do_parallel_outputs,
            StepKind.WAIT_PARALLEL: self._do_nothing,
            StepKind.DISCONNECT_ORIG_OUTPUTS: self._do_disconnect_outputs,
            StepKind.DISCONNECT_ORIG_INPUTS: self._do_disconnect_inputs,
        }[step.kind]
        handler(ctx)

    def _do_nothing(self, ctx: "_Context") -> None:
        """Wait steps and physical-only steps mutate nothing logical."""

    def _do_copy_config(self, ctx: "_Context") -> None:
        """Phase 1 of Fig. 2: copy the internal configuration into the new
        location; the replica's inputs observe the same nets (paralleled).
        """
        circuit = self.sim.circuit
        fabric = self.design.fabric
        cell = ctx.cell
        if ctx.use_aux:
            # Decomposed replica: its own LUT (rcomb) plus a storage
            # element whose D path the aux circuit will steer.
            cectl = Cell(ctx.cectl, LUT_CONST0, ())
            circuit.add_cell(cectl)
            rcomb = Cell(ctx.rcomb, cell.lut, cell.inputs)
            circuit.add_cell(rcomb)
            replica = Cell(
                ctx.replica,
                LUT_BUF,
                (ctx.rcomb,),
                mode=cell.mode,
                ce=ctx.cectl,
                init_state=0,
            )
            circuit.add_cell(replica)
        else:
            replica = cell.renamed(ctx.replica)
            circuit.add_cell(replica)
        if replica.sequential:
            self.sim.state.setdefault(ctx.replica, replica.init_state)
        fabric.place_cell(
            ctx.dst, LogicCellConfig(mode=cell.mode, lut=cell.lut)
        )
        self.design.placement[ctx.replica] = ctx.dst

    def _do_connect_aux(self, ctx: "_Context") -> None:
        """Wire the OR gate and 2:1 mux of Fig. 3 (in a nearby free CLB)
        using only free routing resources."""
        circuit = self.sim.circuit
        fabric = self.design.fabric
        cell = ctx.cell
        assert cell.ce is not None and ctx.aux is not None
        circuit.add_cell(or2(ctx.aor, cell.ce, ctx.cectl))
        circuit.add_cell(mux21(ctx.amux, cell.output, ctx.rcomb, cell.ce))
        replica = circuit.cells[ctx.replica]
        circuit.replace_cell(replica.rewired(ce=ctx.aor))
        clb = fabric.clb(ctx.aux)
        free = clb.free_cell_indices()
        clb.place_cell(free[0], LogicCellConfig(mode=CellMode.COMBINATIONAL))
        clb.place_cell(free[1], LogicCellConfig(mode=CellMode.COMBINATIONAL))
        ctx.aux_cells = (free[0], free[1])

    def _do_activate_controls(self, ctx: "_Context") -> None:
        """Drive relocation control and clock-enable control active —
        both "driven through the reconfiguration memory" (section 2)."""
        circuit = self.sim.circuit
        circuit.replace_cell(circuit.cells[ctx.cectl].rewired(lut=LUT_CONST1))
        replica = circuit.cells[ctx.replica]
        circuit.replace_cell(replica.rewired(inputs=(ctx.amux,)))

    def _do_deactivate_ce(self, ctx: "_Context") -> None:
        circuit = self.sim.circuit
        circuit.replace_cell(circuit.cells[ctx.cectl].rewired(lut=LUT_CONST0))

    def _do_connect_ce(self, ctx: "_Context") -> None:
        circuit = self.sim.circuit
        replica = circuit.cells[ctx.replica]
        circuit.replace_cell(replica.rewired(ce=ctx.cell.ce))

    def _do_deactivate_reloc(self, ctx: "_Context") -> None:
        circuit = self.sim.circuit
        replica = circuit.cells[ctx.replica]
        circuit.replace_cell(replica.rewired(inputs=(ctx.rcomb,)))

    def _do_disconnect_aux(self, ctx: "_Context") -> None:
        circuit = self.sim.circuit
        fabric = self.design.fabric
        for name in (ctx.amux, ctx.aor, ctx.cectl):
            circuit.remove_cell(name)
            self.sim.forget_cell(name)
        assert ctx.aux is not None and ctx.aux_cells is not None
        clb = fabric.clb(ctx.aux)
        for index in ctx.aux_cells:
            clb.vacate_cell(index)
        ctx.aux_cells = None

    def _do_parallel_outputs(self, ctx: "_Context") -> None:
        """Phase 2 of Fig. 2: with the replica stable, drive the output
        net from both CLBs."""
        self.sim.circuit.add_parallel_driver(ctx.cell.output, ctx.replica)

    def _do_disconnect_outputs(self, ctx: "_Context") -> None:
        self.sim.circuit.promote_parallel_driver(ctx.cell.output, ctx.replica)

    def _do_disconnect_inputs(self, ctx: "_Context") -> None:
        """Final step: the original CLB "becomes part of the pool of free
        resources"; the replica is recomposed under the original name."""
        circuit = self.sim.circuit
        cell = ctx.cell
        circuit.remove_cell(ctx.name)
        self.sim.forget_cell(ctx.name)
        self.design.unbind_cell(ctx.name)
        if ctx.use_aux:
            state = self.sim.state.get(ctx.replica, 0)
            circuit.remove_cell(ctx.rcomb)
            self.sim.forget_cell(ctx.rcomb)
            circuit.remove_cell(ctx.replica)
            self.sim.forget_cell(ctx.replica)
            circuit.add_cell(
                Cell(
                    ctx.name,
                    cell.lut,
                    cell.inputs,
                    mode=cell.mode,
                    ce=cell.ce,
                    output=cell.output,
                    init_state=state,
                )
            )
            self.sim.state[ctx.name] = state
        else:
            replica = circuit.remove_cell(ctx.replica)
            circuit.add_cell(replica.rewired(name=ctx.name))
            self.sim.rename_state(ctx.replica, ctx.name)
        self.design.placement.pop(ctx.replica, None)
        self.design.placement[ctx.name] = ctx.dst

    # -- rerouting -----------------------------------------------------------

    def _reroute_cell(self, cell_name: str, report: RelocationReport) -> None:
        """Re-route any pre-routed nets touching the moved cell.

        The paper notes the relocation "might imply a longer path,
        therefore decreasing the maximum frequency of operation"
        (section 3); the report records the before/after delays.
        """
        routing = self.design.fabric.routing
        stale = [
            key for key in self.design.routes if cell_name in key
        ]
        for key in stale:
            path = self.design.routes.pop(key)
            report.rerouted_delay_before_ns += path.delay_ns
            routing.release(path)
            driver, sink = key
            try:
                a = self.design.site_of(driver).clb
                b = self.design.site_of(sink).clb
            except Exception:
                continue
            if a == b:
                continue
            try:
                new_path = routing.route_and_allocate(a, b)
            except RoutingError:
                continue
            self.design.routes[key] = new_path
            report.rerouted_delay_after_ns += new_path.delay_ns


@dataclass
class _Context:
    """Per-relocation naming and site context."""

    name: str
    cell: Cell
    src: CellCoord
    dst: CellCoord
    aux: ClbCoord | None
    use_aux: bool
    aux_cells: tuple[int, int] | None = None

    @property
    def replica(self) -> str:
        return f"{self.name}~replica"

    @property
    def rcomb(self) -> str:
        return f"{self.name}~rcomb"

    @property
    def amux(self) -> str:
        return f"{self.name}~amux"

    @property
    def aor(self) -> str:
        return f"{self.name}~aor"

    @property
    def cectl(self) -> str:
        return f"{self.name}~cectl"


def make_lockstep_engine(
    design: MappedDesign,
    stimulus: Stimulus | None = None,
    cost_model: CostModel | None = None,
    cycles_per_config_step: int = 2,
) -> tuple[RelocationEngine, LockstepChecker]:
    """Build an engine whose simulator runs against a golden copy.

    The golden circuit is cloned before any relocation; both receive the
    same stimulus, so ``checker.clean`` is the transparency verdict.
    """
    golden = CycleSimulator(design.circuit.clone(f"{design.circuit.name}~golden"))
    dut = CycleSimulator(design.circuit)
    checker = LockstepChecker(dut, golden)
    engine = RelocationEngine(
        design,
        dut,
        cost_model=cost_model,
        checker=checker,
        stimulus=stimulus,
        cycles_per_config_step=cycles_per_config_step,
    )
    return engine, checker
