"""Reconfiguration cost model: from plan steps to Boundary-Scan seconds.

The paper reports "the average relocation time of each CLB implementing
synchronous gated-clock circuits is about 22.6 ms, when the Boundary Scan
infrastructure is used to perform the reconfiguration, at a test clock
frequency of 20 MHz" (section 2).  That number decomposes as:

    per step:   frames written x frame length  +  packet overhead
    per frame:  one extra pad frame per FDRI burst
    per bit:    one TCK cycle over Boundary Scan (1 bit per cycle)

Two write granularities are supported (DESIGN.md, sections 5 and 7):

* ``column`` — every step rewrites the *entire* configuration column(s)
  containing modified bits.  This matches the paper's JBits/Boundary-Scan
  flow, where the partial configuration files are generated per column,
  and is what reproduces the 22.6 ms figure.
* ``frame`` — only the frames actually containing modified bits are
  written (SelectMAP/ICAP-style fine-grained flow); the ablation shows
  how much of the cost is granularity.

The model generates *real* packet streams (via
:class:`~repro.device.bitstream.PartialBitstream`) against a scratch
configuration memory and plays them through a fresh Boundary-Scan port,
so the seconds reported include every header, pad frame and TAP state
walk — nothing is hand-waved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.device.bitstream import FrameWrite, PartialBitstream
from repro.device.config_memory import (
    ColumnKind,
    ConfigMemory,
    FrameAddress,
    LOGIC_MINORS,
    ROUTING_MINORS,
    STATE_MINORS,
)
from repro.device.devices import VirtexDevice
from repro.device.jtag import BoundaryScanPort, SelectMapPort

from .procedure import ProcedureStep, RelocationPlan, StepClass


@dataclass(frozen=True)
class CostParameters:
    """Tunable knobs of the cost model.

    ``granularity`` selects column or frame writes.  The ``*_frames``
    counts apply in frame granularity only: how many frames of a column
    each step class actually dirties (routing steps flip PIPs spread over
    several interconnect frames; a logic copy rewrites the LUT/FF frames
    of the destination column; control-bit flips touch a couple of
    frames).
    """

    granularity: str = "column"
    tck_hz: float = 20e6
    routing_frames_per_column: int = 8
    logic_frames_per_column: int = len(LOGIC_MINORS)
    control_frames_per_column: int = 2
    readback_verify: bool = False

    def __post_init__(self) -> None:
        if self.granularity not in ("column", "frame"):
            raise ValueError("granularity must be 'column' or 'frame'")


@dataclass
class StepCost:
    """Cost of one plan step."""

    step: ProcedureStep
    frames: int
    words: int
    seconds: float


@dataclass
class PlanCost:
    """Cost of a whole relocation plan."""

    plan: RelocationPlan
    steps: list[StepCost] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """End-to-end reconfiguration time (waits excluded: they overlap
        the next step's file preparation and are nanoseconds against
        milliseconds)."""
        return sum(s.seconds for s in self.steps)

    @property
    def total_frames(self) -> int:
        """Total configuration frames written."""
        return sum(s.frames for s in self.steps)

    @property
    def total_words(self) -> int:
        """Total 32-bit words shifted through the port."""
        return sum(s.words for s in self.steps)


class CostModel:
    """Computes relocation timing for one device and port type."""

    def __init__(self, device: VirtexDevice,
                 params: CostParameters | None = None,
                 port_kind: str = "boundary-scan") -> None:
        self.device = device
        self.params = params or CostParameters()
        if port_kind not in ("boundary-scan", "selectmap"):
            raise ValueError("port_kind must be 'boundary-scan' or 'selectmap'")
        self.port_kind = port_kind
        # Scratch memory to generate representative packet streams.
        self._scratch = ConfigMemory(device)
        # A step's cost is a pure function of its kind and column set
        # (everything else — granularity, frame counts, port timing — is
        # fixed per model), so repeated steps skip regenerating their
        # packet stream entirely.
        self._step_cost_cache: dict[tuple, tuple[int, int, float]] = {}
        # Per-step-class (minors per column, FDRI bursts per column),
        # backing the closed-form word count of the stock model (see
        # :meth:`step_cost`).
        self._class_layout_cache: dict[StepClass, tuple[int, int]] = {}

    # -- frame accounting ------------------------------------------------------

    def _column_minors(self, step_class: StepClass) -> list[int]:
        """The frame minors one column of ``step_class`` dirties."""
        p = self.params
        if p.granularity == "column":
            return list(
                range(self._scratch.frames_in_column(ColumnKind.CLB))
            )
        if step_class is StepClass.ROUTING:
            return list(ROUTING_MINORS)[: p.routing_frames_per_column]
        if step_class is StepClass.LOGIC:
            return list(LOGIC_MINORS)[: p.logic_frames_per_column]
        return list(STATE_MINORS)[: p.control_frames_per_column]

    def _class_layout(self, step_class: StepClass) -> tuple[int, int]:
        """``(minors per column, FDRI bursts per column)`` of a class.

        :class:`~repro.device.bitstream.PartialBitstream` merges
        consecutive same-major writes with consecutive minors into one
        FDRI burst, so a column's burst count is the number of
        *contiguous runs* in its minor list — a constant per step class
        and granularity.  Bursts never merge across columns (their
        majors differ), which is what makes the whole stream's word
        count a closed form in the column count (see :meth:`step_cost`).
        """
        hit = self._class_layout_cache.get(step_class)
        if hit is not None:
            return hit
        minors = self._column_minors(step_class)
        runs = sum(
            1
            for i, minor in enumerate(minors)
            if i == 0 or minor != minors[i - 1] + 1
        )
        layout = (len(minors), runs)
        self._class_layout_cache[step_class] = layout
        return layout

    def frames_for_step(self, step: ProcedureStep) -> list[FrameAddress]:
        """The frame addresses a step writes, per the model's granularity."""
        if step.is_wait or not step.columns:
            return []
        minors = self._column_minors(step.step_class)
        addresses: list[FrameAddress] = []
        for col in sorted(step.columns):
            major = self._scratch.clb_major(col)
            addresses.extend(
                FrameAddress(ColumnKind.CLB, major, m) for m in minors
            )
        return addresses

    def bitstream_for_step(self, step: ProcedureStep,
                           label: str = "") -> PartialBitstream | None:
        """The partial configuration file one step loads (None for waits)."""
        addresses = self.frames_for_step(step)
        if not addresses:
            return None
        payload = bytes(self._scratch.frame_bytes)
        stream = PartialBitstream(self._scratch, label or step.kind.name)
        stream.add_frame_writes([FrameWrite(a, payload) for a in addresses])
        return stream.finalize()

    # -- timing ---------------------------------------------------------------

    def _fresh_port(self) -> BoundaryScanPort | SelectMapPort:
        if self.port_kind == "boundary-scan":
            return BoundaryScanPort(self.params.tck_hz)
        return SelectMapPort()

    #: Words outside the FDRI bursts of any non-empty stream: the sync
    #: word plus the RCRC, CRC, DESYNC and NOP packets
    #: (:class:`~repro.device.bitstream.PartialBitstream`'s fixed
    #: prologue and trailer).
    _STREAM_OVERHEAD_WORDS = 8
    #: Words per FDRI burst besides the frame payload and its pad
    #: frame: the CMD WCFG packet (2), the FAR packet (2) and the FDRI
    #: packet header (1).
    _BURST_OVERHEAD_WORDS = 5

    def step_words(self, step: ProcedureStep) -> int:
        """Exact wire words of a step's partial bitstream, closed form.

        Per column of ``R`` FDRI bursts covering ``K`` frames, the
        stream carries ``5R`` burst-overhead words plus ``(K + R)``
        frames of payload (each burst appends one pad frame); the
        stream prologue/trailer add a constant 8.  This is exactly
        ``bitstream_for_step(step).word_count`` — pinned by a
        differential test — without materialising the packet stream,
        whose payload bytes and CRC cost milliseconds per step and
        cannot change the *timing* (the port shifts a CRC word no
        matter its value).
        """
        if step.is_wait or not step.columns:
            return 0
        per_col, runs = self._class_layout(step.step_class)
        frame_words = self.device.frame_words
        return self._STREAM_OVERHEAD_WORDS + len(step.columns) * (
            self._BURST_OVERHEAD_WORDS * runs
            + (per_col + runs) * frame_words
        )

    def step_cost(self, step: ProcedureStep) -> StepCost:
        """Frames, words and seconds for one step.

        The stock model computes the word count in closed form
        (:meth:`step_words`); subclasses that override the frame
        accounting keep the exact packet-stream path.
        """
        key = (step.kind, step.columns)
        hit = self._step_cost_cache.get(key)
        if hit is not None:
            return StepCost(step, *hit)
        if type(self) is CostModel:
            words = self.step_words(step)
            if words == 0:
                self._step_cost_cache[key] = (0, 0, 0.0)
                return StepCost(step, 0, 0, 0.0)
            per_col, __ = self._class_layout(step.step_class)
            frames = len(step.columns) * per_col
        else:
            stream = self.bitstream_for_step(step)
            if stream is None:
                self._step_cost_cache[key] = (0, 0, 0.0)
                return StepCost(step, 0, 0, 0.0)
            words = stream.word_count
            frames = len(self.frames_for_step(step))
        port = self._fresh_port()
        seconds = port.configure(words)
        if self.params.readback_verify:
            seconds += port.readback(words)
        self._step_cost_cache[key] = (frames, words, seconds)
        return StepCost(step, frames, words, seconds)

    def plan_cost(self, plan: RelocationPlan) -> PlanCost:
        """Cost breakdown for a whole relocation plan."""
        cost = PlanCost(plan)
        for step in plan.steps:
            cost.steps.append(self.step_cost(step))
        return cost

    def seconds_for_columns(self, n_columns: int,
                            step_class: StepClass = StepClass.ROUTING) -> float:
        """Convenience: time to write ``n_columns`` columns in one burst
        (used by the manager's move-cost estimates)."""
        if n_columns <= 0:
            return 0.0
        p = self.params
        if p.granularity == "column":
            frames_per_col = self._scratch.frames_in_column(ColumnKind.CLB)
        elif step_class is StepClass.ROUTING:
            frames_per_col = p.routing_frames_per_column
        elif step_class is StepClass.LOGIC:
            frames_per_col = p.logic_frames_per_column
        else:
            frames_per_col = p.control_frames_per_column
        if type(self) is CostModel:
            # One burst per column (the burst's minors are the
            # contiguous ``range(frames_per_col)`` and majors never
            # merge), so the word count is closed form — identical to
            # the packet stream built below, pinned by test.
            words = self._STREAM_OVERHEAD_WORDS + n_columns * (
                self._BURST_OVERHEAD_WORDS
                + (frames_per_col + 1) * self.device.frame_words
            )
        else:
            payload = bytes(self._scratch.frame_bytes)
            stream = PartialBitstream(self._scratch, "estimate")
            writes = []
            for col in range(n_columns):
                major = col % self.device.clb_cols
                writes.extend(
                    FrameWrite(FrameAddress(ColumnKind.CLB, major, minor),
                               payload)
                    for minor in range(frames_per_col)
                )
            stream.add_frame_writes(writes)
            stream.finalize()
            words = stream.word_count
        port = self._fresh_port()
        seconds = port.configure(words)
        if self.params.readback_verify:
            seconds += port.readback(words)
        return seconds
