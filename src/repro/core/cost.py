"""Reconfiguration cost model: from plan steps to Boundary-Scan seconds.

The paper reports "the average relocation time of each CLB implementing
synchronous gated-clock circuits is about 22.6 ms, when the Boundary Scan
infrastructure is used to perform the reconfiguration, at a test clock
frequency of 20 MHz" (section 2).  That number decomposes as:

    per step:   frames written x frame length  +  packet overhead
    per frame:  one extra pad frame per FDRI burst
    per bit:    one TCK cycle over Boundary Scan (1 bit per cycle)

Two write granularities are supported (DESIGN.md, sections 5 and 7):

* ``column`` — every step rewrites the *entire* configuration column(s)
  containing modified bits.  This matches the paper's JBits/Boundary-Scan
  flow, where the partial configuration files are generated per column,
  and is what reproduces the 22.6 ms figure.
* ``frame`` — only the frames actually containing modified bits are
  written (SelectMAP/ICAP-style fine-grained flow); the ablation shows
  how much of the cost is granularity.

The model generates *real* packet streams (via
:class:`~repro.device.bitstream.PartialBitstream`) against a scratch
configuration memory and plays them through a fresh Boundary-Scan port,
so the seconds reported include every header, pad frame and TAP state
walk — nothing is hand-waved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.device.bitstream import FrameWrite, PartialBitstream
from repro.device.config_memory import (
    ColumnKind,
    ConfigMemory,
    FrameAddress,
    LOGIC_MINORS,
    ROUTING_MINORS,
    STATE_MINORS,
)
from repro.device.devices import VirtexDevice
from repro.device.jtag import BoundaryScanPort, SelectMapPort

from .procedure import ProcedureStep, RelocationPlan, StepClass


@dataclass(frozen=True)
class CostParameters:
    """Tunable knobs of the cost model.

    ``granularity`` selects column or frame writes.  The ``*_frames``
    counts apply in frame granularity only: how many frames of a column
    each step class actually dirties (routing steps flip PIPs spread over
    several interconnect frames; a logic copy rewrites the LUT/FF frames
    of the destination column; control-bit flips touch a couple of
    frames).
    """

    granularity: str = "column"
    tck_hz: float = 20e6
    routing_frames_per_column: int = 8
    logic_frames_per_column: int = len(LOGIC_MINORS)
    control_frames_per_column: int = 2
    readback_verify: bool = False

    def __post_init__(self) -> None:
        if self.granularity not in ("column", "frame"):
            raise ValueError("granularity must be 'column' or 'frame'")


@dataclass
class StepCost:
    """Cost of one plan step."""

    step: ProcedureStep
    frames: int
    words: int
    seconds: float


@dataclass
class PlanCost:
    """Cost of a whole relocation plan."""

    plan: RelocationPlan
    steps: list[StepCost] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """End-to-end reconfiguration time (waits excluded: they overlap
        the next step's file preparation and are nanoseconds against
        milliseconds)."""
        return sum(s.seconds for s in self.steps)

    @property
    def total_frames(self) -> int:
        """Total configuration frames written."""
        return sum(s.frames for s in self.steps)

    @property
    def total_words(self) -> int:
        """Total 32-bit words shifted through the port."""
        return sum(s.words for s in self.steps)


class CostModel:
    """Computes relocation timing for one device and port type."""

    def __init__(self, device: VirtexDevice,
                 params: CostParameters | None = None,
                 port_kind: str = "boundary-scan") -> None:
        self.device = device
        self.params = params or CostParameters()
        if port_kind not in ("boundary-scan", "selectmap"):
            raise ValueError("port_kind must be 'boundary-scan' or 'selectmap'")
        self.port_kind = port_kind
        # Scratch memory to generate representative packet streams.
        self._scratch = ConfigMemory(device)
        # A step's cost is a pure function of its kind and column set
        # (everything else — granularity, frame counts, port timing — is
        # fixed per model), so repeated steps skip regenerating their
        # packet stream entirely.
        self._step_cost_cache: dict[tuple, tuple[int, int, float]] = {}

    # -- frame accounting ------------------------------------------------------

    def frames_for_step(self, step: ProcedureStep) -> list[FrameAddress]:
        """The frame addresses a step writes, per the model's granularity."""
        if step.is_wait or not step.columns:
            return []
        p = self.params
        addresses: list[FrameAddress] = []
        for col in sorted(step.columns):
            major = self._scratch.clb_major(col)
            if p.granularity == "column":
                minors: list[int] = list(
                    range(self._scratch.frames_in_column(ColumnKind.CLB))
                )
            elif step.step_class is StepClass.ROUTING:
                minors = list(ROUTING_MINORS)[: p.routing_frames_per_column]
            elif step.step_class is StepClass.LOGIC:
                minors = list(LOGIC_MINORS)[: p.logic_frames_per_column]
            else:  # control
                minors = list(STATE_MINORS)[: p.control_frames_per_column]
            addresses.extend(
                FrameAddress(ColumnKind.CLB, major, m) for m in minors
            )
        return addresses

    def bitstream_for_step(self, step: ProcedureStep,
                           label: str = "") -> PartialBitstream | None:
        """The partial configuration file one step loads (None for waits)."""
        addresses = self.frames_for_step(step)
        if not addresses:
            return None
        payload = bytes(self._scratch.frame_bytes)
        stream = PartialBitstream(self._scratch, label or step.kind.name)
        stream.add_frame_writes([FrameWrite(a, payload) for a in addresses])
        return stream.finalize()

    # -- timing ---------------------------------------------------------------

    def _fresh_port(self) -> BoundaryScanPort | SelectMapPort:
        if self.port_kind == "boundary-scan":
            return BoundaryScanPort(self.params.tck_hz)
        return SelectMapPort()

    def step_cost(self, step: ProcedureStep) -> StepCost:
        """Frames, words and seconds for one step."""
        key = (step.kind, step.columns)
        hit = self._step_cost_cache.get(key)
        if hit is not None:
            return StepCost(step, *hit)
        stream = self.bitstream_for_step(step)
        if stream is None:
            self._step_cost_cache[key] = (0, 0, 0.0)
            return StepCost(step, 0, 0, 0.0)
        port = self._fresh_port()
        seconds = port.configure(stream.word_count)
        if self.params.readback_verify:
            seconds += port.readback(stream.word_count)
        frames = len(self.frames_for_step(step))
        self._step_cost_cache[key] = (frames, stream.word_count, seconds)
        return StepCost(step, frames, stream.word_count, seconds)

    def plan_cost(self, plan: RelocationPlan) -> PlanCost:
        """Cost breakdown for a whole relocation plan."""
        cost = PlanCost(plan)
        for step in plan.steps:
            cost.steps.append(self.step_cost(step))
        return cost

    def seconds_for_columns(self, n_columns: int,
                            step_class: StepClass = StepClass.ROUTING) -> float:
        """Convenience: time to write ``n_columns`` columns in one burst
        (used by the manager's move-cost estimates)."""
        if n_columns <= 0:
            return 0.0
        p = self.params
        if p.granularity == "column":
            frames_per_col = self._scratch.frames_in_column(ColumnKind.CLB)
        elif step_class is StepClass.ROUTING:
            frames_per_col = p.routing_frames_per_column
        elif step_class is StepClass.LOGIC:
            frames_per_col = p.logic_frames_per_column
        else:
            frames_per_col = p.control_frames_per_column
        payload = bytes(self._scratch.frame_bytes)
        stream = PartialBitstream(self._scratch, "estimate")
        writes = []
        for col in range(n_columns):
            major = col % self.device.clb_cols
            writes.extend(
                FrameWrite(FrameAddress(ColumnKind.CLB, major, minor), payload)
                for minor in range(frames_per_col)
            )
        stream.add_frame_writes(writes)
        stream.finalize()
        port = self._fresh_port()
        seconds = port.configure(stream.word_count)
        if self.params.readback_verify:
            seconds += port.readback(stream.word_count)
        return seconds
