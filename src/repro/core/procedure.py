"""The relocation procedure: step plans per the paper's Figs. 2 and 4.

A relocation is a *sequence of partial reconfigurations* interleaved with
mandatory waits.  This module builds the step plan for a given cell mode:

* **Combinational** cells use the two-phase procedure of Fig. 2: copy the
  internal configuration and parallel the inputs (phase 1); once the
  replica outputs are stable, parallel the outputs (phase 2); keep both
  in parallel at least one clock cycle; detach the original, outputs
  first.
* **Free-running-clock** flip-flops use the same two phases — "between
  the first and the second phase the CLB replica has the same inputs as
  the original CLB, and all its flip-flops acquire the same state
  information" — with a two-cycle capture wait.
* **Gated-clock** flip-flops and **latches** follow the full flow diagram
  of Fig. 4, routed through the auxiliary relocation circuit (Fig. 3).

Each step records the set of configuration columns it touches, which the
cost model converts into frame writes and Boundary-Scan time.  The plan
also enforces the paper's LUT/RAM restriction: distributed-RAM cells can
neither be relocated nor lie in any column a relocation touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.device.clb import CellMode


class RelocationVeto(RuntimeError):
    """The relocation is not permitted (LUT/RAM restriction, occupancy)."""


class StepKind(Enum):
    """The reconfiguration/wait steps of the relocation flow (Fig. 4)."""

    COPY_CONFIG = "copy internal CLB configuration to the new location"
    CONNECT_AUX = "connect signals to the auxiliary relocation circuit"
    PARALLEL_INPUTS = "place CLB input signals in parallel"
    ACTIVATE_CONTROLS = "activate relocation and clock enable control"
    WAIT_CAPTURE = "wait (> 2 CLK pulses) for state capture"
    DEACTIVATE_CE_CONTROL = "deactivate clock enable control"
    CONNECT_CE = "connect the clock enable inputs of both CLBs"
    DEACTIVATE_RELOC_CONTROL = "deactivate relocation control"
    DISCONNECT_AUX = "disconnect all the auxiliary relocation circuit signals"
    PARALLEL_OUTPUTS = "place CLB outputs in parallel"
    WAIT_PARALLEL = "wait (> 1 CLK pulse) with outputs in parallel"
    DISCONNECT_ORIG_OUTPUTS = "disconnect the original CLB outputs"
    DISCONNECT_ORIG_INPUTS = "disconnect the original CLB inputs"

    @property
    def is_wait(self) -> bool:
        """True for pure wait steps (no configuration traffic)."""
        return self in (StepKind.WAIT_CAPTURE, StepKind.WAIT_PARALLEL)


#: Minimum clock cycles for the wait steps: the flow diagram demands
#: "> 2 CLK pulse" after activating the controls and "> 1 CLK pulse"
#: with the outputs paralleled.
MIN_WAIT_CYCLES = {StepKind.WAIT_CAPTURE: 3, StepKind.WAIT_PARALLEL: 2}


class StepClass(Enum):
    """What a configuration step writes — drives frame accounting."""

    ROUTING = "routing"  # interconnect (PIP) changes across columns
    LOGIC = "logic"      # CLB internal configuration (LUT, FF mode)
    CONTROL = "control"  # a control bit driven through the config memory
    NONE = "none"        # pure wait


#: Step kind -> what it writes.
STEP_CLASSES: dict[StepKind, StepClass] = {
    StepKind.COPY_CONFIG: StepClass.LOGIC,
    StepKind.CONNECT_AUX: StepClass.ROUTING,
    StepKind.PARALLEL_INPUTS: StepClass.ROUTING,
    StepKind.ACTIVATE_CONTROLS: StepClass.CONTROL,
    StepKind.WAIT_CAPTURE: StepClass.NONE,
    StepKind.DEACTIVATE_CE_CONTROL: StepClass.CONTROL,
    StepKind.CONNECT_CE: StepClass.ROUTING,
    StepKind.DEACTIVATE_RELOC_CONTROL: StepClass.CONTROL,
    StepKind.DISCONNECT_AUX: StepClass.ROUTING,
    StepKind.PARALLEL_OUTPUTS: StepClass.ROUTING,
    StepKind.WAIT_PARALLEL: StepClass.NONE,
    StepKind.DISCONNECT_ORIG_OUTPUTS: StepClass.ROUTING,
    StepKind.DISCONNECT_ORIG_INPUTS: StepClass.ROUTING,
}


@dataclass(frozen=True)
class ProcedureStep:
    """One step of a relocation plan."""

    kind: StepKind
    columns: frozenset[int]
    min_wait_cycles: int = 0

    @property
    def step_class(self) -> StepClass:
        """What this step writes."""
        return STEP_CLASSES[self.kind]

    @property
    def is_wait(self) -> bool:
        """True for pure wait steps."""
        return self.kind.is_wait

    def __str__(self) -> str:
        cols = ",".join(str(c) for c in sorted(self.columns)) or "-"
        return f"[{self.kind.name} cols={cols}]"


@dataclass
class RelocationPlan:
    """The ordered steps relocating one logic cell."""

    cell: str
    mode: CellMode
    steps: list[ProcedureStep] = field(default_factory=list)

    @property
    def config_steps(self) -> list[ProcedureStep]:
        """Steps that write configuration frames."""
        return [s for s in self.steps if not s.is_wait]

    @property
    def touched_columns(self) -> set[int]:
        """All configuration columns the relocation writes."""
        cols: set[int] = set()
        for step in self.steps:
            cols.update(step.columns)
        return cols

    def validate_order(self) -> None:
        """Check the plan honours the flow diagram's ordering constraints.

        The constraints that guarantee transparency (section 2):

        * signals of the original CLB must not be broken before being
          re-established from the replica — outputs are paralleled before
          the original outputs are disconnected, inputs detach last;
        * the replica's outputs connect only after its configuration was
          copied (stability before connection);
        * for gated cells, state capture (controls active + wait) happens
          before the outputs are paralleled.
        """
        order = [s.kind for s in self.steps]

        def pos(kind: StepKind) -> int:
            try:
                return order.index(kind)
            except ValueError:
                raise RelocationVeto(
                    f"plan for {self.cell} lacks mandatory step {kind.name}"
                ) from None

        if pos(StepKind.COPY_CONFIG) > pos(StepKind.PARALLEL_OUTPUTS):
            raise RelocationVeto("outputs paralleled before config copy")
        if pos(StepKind.PARALLEL_OUTPUTS) > pos(StepKind.DISCONNECT_ORIG_OUTPUTS):
            raise RelocationVeto("original outputs broken before replica ready")
        if pos(StepKind.DISCONNECT_ORIG_OUTPUTS) > pos(
            StepKind.DISCONNECT_ORIG_INPUTS
        ):
            raise RelocationVeto(
                "inputs must detach after outputs (prevents transients)"
            )
        if pos(StepKind.WAIT_PARALLEL) < pos(StepKind.PARALLEL_OUTPUTS):
            raise RelocationVeto("parallel wait precedes output paralleling")
        if self.mode in (CellMode.FF_GATED_CLOCK, CellMode.LATCH):
            if pos(StepKind.WAIT_CAPTURE) > pos(StepKind.PARALLEL_OUTPUTS):
                raise RelocationVeto("state capture must precede output parallel")
            if pos(StepKind.ACTIVATE_CONTROLS) > pos(StepKind.WAIT_CAPTURE):
                raise RelocationVeto("controls must be active during capture")


def build_plan(
    cell: str,
    mode: CellMode,
    signal_columns: set[int],
    src_col: int,
    dst_col: int,
    aux_col: int | None = None,
    ce_col: int | None = None,
) -> RelocationPlan:
    """Build the relocation plan for one cell.

    ``signal_columns`` are the columns crossed by the cell's existing
    signals (from :meth:`repro.netlist.synth.MappedDesign.signal_columns`);
    ``src_col``/``dst_col``/``aux_col`` locate the original, replica and
    auxiliary-circuit CLBs; ``ce_col`` the clock-enable driver for gated
    cells.  Raises :class:`RelocationVeto` for non-relocatable modes.
    """
    if not mode.relocatable:
        raise RelocationVeto(
            f"cell {cell!r} is configured as distributed RAM; the system "
            "would have to be stopped to relocate it (paper, section 2)"
        )
    lo, hi = min(src_col, dst_col), max(src_col, dst_col)
    move_span = set(range(lo, hi + 1))
    io_span = frozenset(signal_columns | move_span)
    dst_only = frozenset({dst_col})
    src_span = frozenset(signal_columns | {src_col})

    plan = RelocationPlan(cell, mode)
    steps = plan.steps
    needs_aux = mode in (CellMode.FF_GATED_CLOCK, CellMode.LATCH)
    if needs_aux:
        if aux_col is None:
            raise RelocationVeto(
                f"gated/latch cell {cell!r} needs an auxiliary circuit site"
            )
        # The temporary transfer paths connect exactly three CLBs — the
        # original, the replica and the auxiliary circuit ("the temporary
        # transfer paths established between the original cells and their
        # replicas", section 2) — so they span those columns only.
        lo_aux = min(src_col, dst_col, aux_col)
        hi_aux = max(src_col, dst_col, aux_col)
        aux_span = frozenset(range(lo_aux, hi_aux + 1))
        ce_span = frozenset(
            {dst_col, src_col}
            | (set(range(min(ce_col, dst_col), max(ce_col, dst_col) + 1))
               if ce_col is not None else set())
        )
        steps.append(ProcedureStep(StepKind.COPY_CONFIG, dst_only))
        steps.append(ProcedureStep(StepKind.CONNECT_AUX, aux_span))
        steps.append(ProcedureStep(StepKind.PARALLEL_INPUTS, io_span))
        steps.append(
            ProcedureStep(StepKind.ACTIVATE_CONTROLS, frozenset({aux_col}))
        )
        steps.append(
            ProcedureStep(
                StepKind.WAIT_CAPTURE,
                frozenset(),
                MIN_WAIT_CYCLES[StepKind.WAIT_CAPTURE],
            )
        )
        steps.append(
            ProcedureStep(StepKind.DEACTIVATE_CE_CONTROL, frozenset({aux_col}))
        )
        steps.append(ProcedureStep(StepKind.CONNECT_CE, ce_span))
        steps.append(
            ProcedureStep(
                StepKind.DEACTIVATE_RELOC_CONTROL, frozenset({aux_col})
            )
        )
        steps.append(ProcedureStep(StepKind.DISCONNECT_AUX, aux_span))
    else:
        steps.append(ProcedureStep(StepKind.COPY_CONFIG, dst_only))
        steps.append(ProcedureStep(StepKind.PARALLEL_INPUTS, io_span))
        if mode is CellMode.FF_FREE_CLOCK:
            steps.append(
                ProcedureStep(
                    StepKind.WAIT_CAPTURE,
                    frozenset(),
                    MIN_WAIT_CYCLES[StepKind.WAIT_CAPTURE],
                )
            )
    steps.append(ProcedureStep(StepKind.PARALLEL_OUTPUTS, io_span))
    steps.append(
        ProcedureStep(
            StepKind.WAIT_PARALLEL,
            frozenset(),
            MIN_WAIT_CYCLES[StepKind.WAIT_PARALLEL],
        )
    )
    steps.append(ProcedureStep(StepKind.DISCONNECT_ORIG_OUTPUTS, src_span))
    steps.append(ProcedureStep(StepKind.DISCONNECT_ORIG_INPUTS, src_span))
    plan.validate_order()
    return plan
