"""The on-line logic-space manager.

Ties the pieces of the paper together: placement requests arrive on-line;
when contiguous space is missing, a rearrangement plan is executed with
one of three policies:

* :attr:`RearrangePolicy.NONE` — no rearrangement; the request waits
  (the fragmentation-suffering baseline of section 1);
* :attr:`RearrangePolicy.HALT` — moved functions are stopped during
  their move, the state of the art the paper criticises ("no physical
  execution of these rearrangements is proposed other than halting those
  functions, stopping the normal system operation");
* :attr:`RearrangePolicy.CONCURRENT` — the paper's contribution: moves
  execute through dynamic relocation "concurrently with all applications
  currently running, without any time overheads" for the moved
  functions; only the configuration port is busy.

Move timing comes from the relocation cost model: moving a W x H function
relocates W*H CLBs, each paying the per-CLB plan cost over the move span
(Boundary Scan, column-granularity writes — the paper's ~22.6 ms per
gated-clock CLB).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.device.clb import CellMode
from repro.device.fabric import Fabric
from repro.device.geometry import Rect
from repro.placement.compaction import Move
from repro.placement.fit import CachedFitter, fitter
from repro.placement import metrics

from .cost import CostModel
from .defrag import DefragPlanner, RearrangementPlan
from .defrag_policy import DefragPolicy, make_defrag_policy
from .procedure import StepClass, build_plan


#: Process-wide relocation/configuration cost memos.  A cost figure is a
#: pure function of (device, port kind, cost parameters, cell mode,
#: geometry), so managers over the same device share it — the scheduling
#: benches and fleet runs construct many managers per process and would
#: otherwise regenerate identical packet streams per instance.  Only the
#: stock :class:`~repro.core.cost.CostModel` participates: subclasses may
#: override the maths, so they always compute through their own instance.
_MOVE_COST_MEMO: dict[tuple, float] = {}
_CONFIG_COST_MEMO: dict[tuple, float] = {}


class RearrangePolicy(Enum):
    """How rearrangement moves are (not) executed."""

    NONE = "none"
    HALT = "halt"
    CONCURRENT = "concurrent"


@dataclass(slots=True)
class MoveExecution:
    """One executed move with its reconfiguration cost."""

    move: Move
    seconds: float
    halted: bool

    @property
    def halt_seconds(self) -> float:
        """Time the moved function was stopped (zero when concurrent)."""
        return self.seconds if self.halted else 0.0


@dataclass(slots=True)
class PlacementOutcome:
    """Result of one placement request."""

    success: bool
    owner: int
    rect: Rect | None = None
    moves: list[MoveExecution] = field(default_factory=list)
    config_seconds: float = 0.0
    method: str = "direct"
    #: fleet member that accepted the request (0 for the single-device
    #: manager; set by :class:`repro.fleet.manager.FleetManager` so the
    #: scheduling kernel charges the right device's port).
    device: int = 0
    #: failure certificate: True when the manager can *prove* that any
    #: request of equal-or-larger footprint (height' >= height and
    #: width' >= width) would also fail against this same occupancy.
    #: Two provable cases exist — a direct-fit failure with
    #: rearrangement disabled (a larger window contains a smaller one),
    #: and a free-area shortfall (defragmentation consolidates sites,
    #: it cannot create them).  A rearrangement-*search* failure is NOT
    #: dominant: the eviction heuristic's candidate anchors and
    #: relocation trade-offs are shape-dependent and non-monotone.  The
    #: scheduling kernel uses the certificate to skip doomed probes of
    #: larger queued shapes; always False on success.
    dominant: bool = False

    @property
    def rearrange_seconds(self) -> float:
        """Configuration-port time spent on rearrangement moves."""
        return sum(m.seconds for m in self.moves)

    @property
    def total_port_seconds(self) -> float:
        """All port time this request consumed (moves + its own config)."""
        return self.rearrange_seconds + self.config_seconds

    @property
    def halted_seconds(self) -> float:
        """Total stopped time inflicted on running functions."""
        return sum(m.halt_seconds for m in self.moves)


@dataclass
class DefragOutcome:
    """Result of one executed proactive consolidation."""

    moves: list[MoveExecution] = field(default_factory=list)
    method: str = "consolidate"
    largest_before: int = 0
    largest_after: int = 0

    @property
    def port_seconds(self) -> float:
        """Configuration-port time the consolidation consumed."""
        return sum(m.seconds for m in self.moves)

    @property
    def halted_seconds(self) -> float:
        """Total stopped time inflicted on running functions."""
        return sum(m.halt_seconds for m in self.moves)


class LogicSpaceManager:
    """On-line allocation with optional transparent rearrangement."""

    def __init__(
        self,
        fabric: Fabric,
        cost_model: CostModel | None = None,
        policy: RearrangePolicy = RearrangePolicy.CONCURRENT,
        fit: str = "first",
        planner: DefragPlanner | None = None,
        moved_cell_mode: CellMode = CellMode.FF_GATED_CLOCK,
        defrag_policy: DefragPolicy | str = "on-failure",
    ) -> None:
        self.fabric = fabric
        self.cost = cost_model or CostModel(fabric.device)
        self.policy = policy
        #: the placement heuristic, memoised per free-space generation —
        #: repeated probes against an unchanged fabric (one admission
        #: pass asks about every waiting shape) are dictionary hits.
        self.fit = CachedFitter(fitter(fit))
        self.planner = planner or DefragPlanner()
        #: worst-case assumption about moved cells: gated-clock cells pay
        #: the full Fig. 4 flow; pass FF_FREE_CLOCK for lighter payloads.
        self.moved_cell_mode = moved_cell_mode
        #: when to rearrange: reactive and/or proactive trigger policy.
        self.defrag_policy = (
            make_defrag_policy(defrag_policy)
            if isinstance(defrag_policy, str) else defrag_policy
        )
        self.outcomes: list[PlacementOutcome] = []
        self.defrag_outcomes: list[DefragOutcome] = []
        self._move_cost_cache: dict[tuple[int, int], float] = {}
        self._config_cost_cache: dict[int, float] = {}

    @property
    def free_space(self):
        """The fabric's free-space engine (all placement queries and
        telemetry read the maximal-empty-rectangle set from here, so a
        request can never observe a stale view of the logic space)."""
        return self.fabric.free_space

    # -- cost estimates --------------------------------------------------------

    def clb_move_seconds(self, src_col: int, dst_col: int) -> float:
        """Port time to relocate one CLB between two columns.

        Each CLB relocation follows the full per-cell procedure; the four
        cells of a CLB share the column writes of one plan ("CLBs
        relocation is performed individually, even if many of these
        blocks were replicated simultaneously", section 2).
        """
        cached = self._move_cost_cache.get((src_col, dst_col))
        if cached is not None:
            return cached
        memo_key = None
        if type(self.cost) is CostModel:
            memo_key = (self.fabric.device, self.cost.port_kind,
                        self.cost.params, self.moved_cell_mode,
                        src_col, dst_col)
            hit = _MOVE_COST_MEMO.get(memo_key)
            if hit is not None:
                self._move_cost_cache[(src_col, dst_col)] = hit
                return hit
        cols = self.fabric.device.clb_cols
        aux_col = min(dst_col + 1, cols - 1)
        span = set(range(min(src_col, dst_col), max(src_col, dst_col) + 1))
        plan = build_plan(
            "move",
            self.moved_cell_mode,
            signal_columns=span,
            src_col=src_col,
            dst_col=dst_col,
            aux_col=aux_col if self.moved_cell_mode in
            (CellMode.FF_GATED_CLOCK, CellMode.LATCH) else None,
            ce_col=src_col,
        )
        seconds = self.cost.plan_cost(plan).total_seconds
        self._move_cost_cache[(src_col, dst_col)] = seconds
        if memo_key is not None:
            _MOVE_COST_MEMO[memo_key] = seconds
        return seconds

    def move_seconds(self, move: Move) -> float:
        """Port time to relocate a whole footprint, CLB by CLB."""
        per_clb = self.clb_move_seconds(move.src.col, move.dst.col)
        return per_clb * move.src.area

    def config_seconds(self, rect: Rect) -> float:
        """Port time to configure an incoming function over ``rect``
        (every column of the footprint is written once)."""
        cached = self._config_cost_cache.get(rect.width)
        if cached is not None:
            return cached
        memo_key = None
        if type(self.cost) is CostModel:
            memo_key = (self.fabric.device, self.cost.port_kind,
                        self.cost.params, rect.width)
            cached = _CONFIG_COST_MEMO.get(memo_key)
        if cached is None:
            cached = self.cost.seconds_for_columns(rect.width, StepClass.LOGIC)
            if memo_key is not None:
                _CONFIG_COST_MEMO[memo_key] = cached
        self._config_cost_cache[rect.width] = cached
        return cached

    # -- requests ---------------------------------------------------------------

    def request(self, height: int, width: int, owner: int) -> PlacementOutcome:
        """Place a ``height`` x ``width`` function for ``owner``.

        Tries a direct fit first; on failure and with rearrangement
        enabled, plans and executes the cheapest rearrangement.  The
        outcome carries all reconfiguration costs for the scheduler to
        charge against the configuration port.
        """
        rect = self.fit(self.fabric.occupancy, height, width,
                        index=self.free_space)
        if rect is not None:
            self.fabric.allocate_region(rect, owner)
            outcome = PlacementOutcome(
                True, owner, rect, config_seconds=self.config_seconds(rect)
            )
            self.outcomes.append(outcome)
            return outcome
        if self.policy is RearrangePolicy.NONE \
                or not self.defrag_policy.reactive:
            # Fit-only failure is monotone in the footprint: any larger
            # window would contain the missing smaller one.
            outcome = PlacementOutcome(False, owner, dominant=True)
            self.outcomes.append(outcome)
            return outcome
        # The token names the current occupancy content (see
        # DefragPlanner.plan): probes repeated against an unchanged
        # fabric reuse the planner's per-generation work and memoised
        # answers.  Successful plans are executed immediately, which
        # bumps the generation — so a memoised *plan* is only ever
        # re-served for requests the fabric still cannot host.
        generation = getattr(self.free_space, "generation", None)
        token = (None if generation is None
                 else (self.free_space, generation))
        plan = self.planner.plan(
            self.fabric.occupancy, height, width, token=token
        )
        if plan is None:
            # The failure is dominant only on a free-area shortfall
            # (larger shapes need even more area); a rearrangement
            # *search* failure proves nothing about other shapes.
            outcome = PlacementOutcome(
                False, owner,
                dominant=self.free_space.free_area() < height * width,
            )
            self.outcomes.append(outcome)
            return outcome
        executions = self.execute_plan(plan)
        self.fabric.allocate_region(plan.target, owner)
        outcome = PlacementOutcome(
            True,
            owner,
            plan.target,
            moves=executions,
            config_seconds=self.config_seconds(plan.target),
            method=plan.method,
        )
        self.outcomes.append(outcome)
        return outcome

    #: how deep into the failing run :meth:`prefetch_admission` resolves
    #: rearrangement plans ahead of demand.  The caller passes the
    #: admission pass's own candidate order, so prefetched plans are
    #: normally all consumed by the pass; the cap bounds the speculation
    #: in the rare case an early shape's *plan* succeeds (which admits
    #: the item and invalidates everything after it).  Shapes past the
    #: cap fall back to on-demand (still token-memoised) planning.
    #: Sized to cover a rejection-heavy pass's whole distinct-shape set
    #: (the batch screens all shapes in one vectorised pass, so depth
    #: is nearly free when plans fail — and plans failing is exactly
    #: when the deep batch gets consumed).
    PLAN_PREFETCH_DEPTH = 32

    def prefetch_admission(self, shapes: list[tuple[int, int]]) -> None:
        """Warm the fit and plan caches for one admission pass.

        ``shapes`` are the queue-eligible (height, width) requests in
        discipline order.  All fit probes are answered against one read
        of the MER set; rearrangement plans are then batch-resolved for
        the leading run of shapes whose fit fails (capped at
        :attr:`PLAN_PREFETCH_DEPTH`) — the first shape that *fits* will
        be admitted, which mutates the fabric and bumps the generation,
        so any plan prefetched past it would be computed against a grid
        the pass never asks about again.  Purely a cache warmer: the
        per-item :meth:`request` calls that follow return bit-identical
        outcomes whether or not this ran.
        """
        if not shapes:
            return
        index = self.free_space
        generation = getattr(index, "generation", None)
        if generation is None:
            return  # no token naming the grid state: nothing to key on
        occupancy = self.fabric.occupancy
        self.fit.prefetch(occupancy, shapes, index)
        if self.policy is RearrangePolicy.NONE \
                or not self.defrag_policy.reactive:
            return
        failing: list[tuple[int, int]] = []
        for height, width in shapes:
            if self.fit(occupancy, height, width, index=index) is not None:
                break
            if (height, width) not in failing:
                failing.append((height, width))
                if len(failing) >= self.PLAN_PREFETCH_DEPTH:
                    break
        if failing:
            self.planner.plan_prefetch(
                occupancy, failing, (index, generation)
            )

    def execute_plan(self, plan: RearrangementPlan) -> list[MoveExecution]:
        """Apply a rearrangement plan to the fabric, move by move."""
        executions: list[MoveExecution] = []
        for move in plan.moves:
            self.fabric.move_region(move.src, move.dst, move.owner)
            executions.append(
                MoveExecution(
                    move,
                    self.move_seconds(move),
                    halted=self.policy is RearrangePolicy.HALT,
                )
            )
        return executions

    def maybe_defrag(self, now: float = 0.0,
                     port_idle: bool = True) -> DefragOutcome | None:
        """Run one proactive consolidation pass if the policy calls for it.

        Consults :attr:`defrag_policy` against the current fragmentation
        metrics (``now`` is simulation time, ``port_idle`` whether the
        reconfiguration port has no queued work); when triggered, asks
        the planner for a consolidation plan and executes it through the
        same relocation path as reactive rearrangements.  Returns the
        executed :class:`DefragOutcome` — whose ``port_seconds`` the
        caller must charge against the reconfiguration port, so
        proactive moves compete with arrivals for it — or ``None`` when
        the policy declined or no profitable plan exists.
        """
        if self.policy is RearrangePolicy.NONE:
            return None
        # Reactive-only policies can never fire here; skip before
        # computing the trigger's fragmentation/free-area inputs, which
        # would otherwise cost a MER-set scan per finish event (times
        # fleet size, once a kernel drives many members).
        if not self.defrag_policy.proactive:
            return None
        if not self.defrag_policy.should_trigger(
            fragmentation=self.fragmentation(),
            free_area=self.free_space.free_area(),
            now=now,
            port_idle=port_idle,
        ):
            return None
        # Cooldown starts at the attempt, not the success: a state the
        # planner cannot improve should not be replanned every event.
        self.defrag_policy.note_attempt(now)
        plan = self.planner.plan_consolidation(self.fabric.occupancy)
        if plan is None or not plan.moves:
            return None
        before = self.free_space.largest_free_area()
        executions = self.execute_plan(plan)
        after = self.free_space.largest_free_area()
        outcome = DefragOutcome(
            moves=executions,
            method=plan.method,
            largest_before=before,
            largest_after=after,
        )
        self.defrag_outcomes.append(outcome)
        return outcome

    def release(self, owner: int) -> None:
        """Free a finished function's footprint."""
        rect = self.fabric.footprint(owner)
        if rect is None:
            raise KeyError(f"owner {owner} holds no region")
        self.fabric.free_region(rect, owner)

    # -- telemetry ----------------------------------------------------------------

    def fragmentation(self) -> float:
        """Current fragmentation index of the logic space."""
        return metrics.fragmentation_index(
            self.fabric.occupancy, index=self.free_space
        )

    def utilization(self) -> float:
        """Current site occupancy."""
        return metrics.utilization(
            self.fabric.occupancy, index=self.free_space
        )
