"""Closed-form model of the auxiliary relocation circuit (Fig. 3).

The paper's argument for the auxiliary circuit is behavioural: with a
gated clock, the naive copy "does not ensure that the CLB replica
captures the correct state information, because CE may not be active
during the relocation procedure", and simply forcing CE is wrong because
"the value present at the input of the replica FFs may change in the
meantime, and a coherency problem would then occur".

This module captures the circuit of Fig. 3 as a two-flip-flop transition
system small enough to *prove* coherency by exhaustive enumeration over
all clock-enable/data sequences — complementing the circuit-level
demonstration in ``repro.core.relocation``:

* original FF: ``q' = d        if ce else q``
* replica D  : ``mux(ce, q_orig, d)`` while relocation control is active
  (the 2:1 multiplexer "is controlled by the clock enable signal of the
  original CLB FF"), else the replica's own combinational output ``d``;
* replica CE : ``ce OR ce_control`` (the OR gate), forced while
  clock-enable control is active.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product


@dataclass
class AuxCircuitState:
    """State of the original/replica FF pair during relocation."""

    q_orig: int
    q_replica: int

    @property
    def coherent(self) -> bool:
        """True when the replica mirrors the original."""
        return self.q_orig == self.q_replica


def aux_mux(ce: int, q_orig: int, replica_comb: int) -> int:
    """The 2:1 multiplexer: CE inactive -> original FF output is applied
    to the replica FF input; CE active -> replica combinational output."""
    return replica_comb if ce else q_orig


def replica_clock_enable(ce: int, ce_control: int) -> int:
    """The OR gate combining the circuit CE with the forced control."""
    return ce | ce_control


def step_aux(state: AuxCircuitState, d: int, ce: int,
             ce_control: int = 1, reloc_control: int = 1) -> AuxCircuitState:
    """One clock edge of the Fig. 3 arrangement.

    ``d`` is the (shared) combinational output feeding both D paths —
    inputs are paralleled, so the original's D and the replica's
    combinational copy compute the same value.
    """
    replica_d = aux_mux(ce, state.q_orig, d) if reloc_control else d
    q_orig = d if ce else state.q_orig
    q_replica = (
        replica_d
        if replica_clock_enable(ce, ce_control)
        else state.q_replica
    )
    return AuxCircuitState(q_orig, q_replica)


def step_naive(state: AuxCircuitState, d: int, ce: int) -> AuxCircuitState:
    """One clock edge of the naive copy: the replica is just a clone
    (same D function, same CE) with whatever state it powered up in."""
    q_orig = d if ce else state.q_orig
    q_replica = d if ce else state.q_replica
    return AuxCircuitState(q_orig, q_replica)


def run_aux_sequence(q_orig: int, q_replica: int,
                     stimulus: list[tuple[int, int]]) -> AuxCircuitState:
    """Run the aux circuit over a (d, ce) sequence with controls active."""
    state = AuxCircuitState(q_orig, q_replica)
    for d, ce in stimulus:
        state = step_aux(state, d, ce)
    return state


def exhaustive_coherency_check(cycles: int = 4) -> bool:
    """Prove: with controls active, the replica is coherent with the
    original after **every** clock edge, for all initial states and all
    ``(d, ce)`` sequences of the given length.

    This is the paper's central claim for the auxiliary circuit,
    machine-verified: 4 initial-state combinations x 4^cycles stimuli.
    """
    for q0, r0 in product((0, 1), repeat=2):
        for stimulus in product(product((0, 1), repeat=2), repeat=cycles):
            state = AuxCircuitState(q0, r0)
            for edge, (d, ce) in enumerate(stimulus):
                state = step_aux(state, d, ce)
                if not state.coherent:
                    return False
    return True


def naive_failure_example() -> tuple[AuxCircuitState, list[tuple[int, int]]]:
    """A concrete (initial state, stimulus) pair where the naive copy
    stays incoherent: CE held low keeps the replica at its power-up
    value while the original holds real state."""
    initial = AuxCircuitState(q_orig=1, q_replica=0)
    stimulus = [(0, 0), (1, 0), (0, 0)]  # CE inactive throughout
    return initial, stimulus


def coherency_after(state: AuxCircuitState,
                    stimulus: list[tuple[int, int]],
                    naive: bool = False) -> list[bool]:
    """Coherency verdict after each edge, for either arrangement."""
    verdicts = []
    for d, ce in stimulus:
        state = step_naive(state, d, ce) if naive else step_aux(state, d, ce)
        verdicts.append(state.coherent)
    return verdicts
