"""When to defragment: trigger policies for proactive consolidation.

The planner in :mod:`repro.core.defrag` answers *how* to rearrange; this
module answers *when*.  The paper's contribution — moves execute
"concurrently with all applications currently running, without any time
overheads" — makes rearrangement cheap enough that a runtime system can
afford to defragment *before* an allocation fails, not only after.  The
floor-plan-prediction line of work (Angermeier & Teich, PAPERS.md) makes
the same point from the other side: anticipating fragmentation ahead of
demand is what separates an allocator from a runtime manager.

Four policies, selectable per scenario (and swept as a campaign axis):

* ``never`` — no rearrangement at all, not even on a failed request:
  the fragmentation-suffering baseline of the paper's section 1;
* ``on-failure`` — reactive only (the historical behaviour): the
  manager plans a rearrangement the moment a request cannot be placed;
* ``threshold`` — reactive, plus a proactive consolidation whenever the
  sampled fragmentation index crosses a threshold;
* ``idle`` — reactive, plus a proactive consolidation whenever the
  reconfiguration port is idle and any fragmentation has accumulated —
  spare port bandwidth is spent keeping the free space contiguous.

Proactive policies rate-limit themselves with a ``cooldown`` (simulated
seconds between consolidation attempts) so trigger checks on busy event
streams cannot thrash the planner.  All state is per-instance and
deterministic: the same event history produces the same trigger
decisions, which the scheduler determinism suite pins.
"""

from __future__ import annotations

#: Names accepted by :func:`make_defrag_policy` (and the campaign's
#: ``defrag`` axis).
DEFRAG_POLICY_NAMES = ("never", "on-failure", "threshold", "idle")


class DefragPolicy:
    """Base trigger policy: reactive rearrangement, never proactive.

    Subclasses override :meth:`_trigger` (and the ``proactive`` /
    ``reactive`` class flags) to implement the registry entries above.
    :meth:`should_trigger` wraps ``_trigger`` with the shared guards:
    proactive policies only fire when free space exists at all and the
    cooldown since the last attempt has elapsed.
    """

    #: registry name of the policy.
    name = "on-failure"
    #: may the manager plan a rearrangement for a *failed request*?
    reactive = True
    #: does the policy ever ask for a *proactive* consolidation?
    proactive = False

    def __init__(self, cooldown: float = 0.25) -> None:
        if cooldown < 0:
            raise ValueError("cooldown cannot be negative")
        self.cooldown = cooldown
        self._last_attempt: float | None = None

    def should_trigger(self, *, fragmentation: float, free_area: int,
                       now: float, port_idle: bool) -> bool:
        """True when a proactive consolidation should be attempted now."""
        if not self.proactive:
            return False
        if free_area <= 0:
            return False
        if (self._last_attempt is not None
                and now - self._last_attempt < self.cooldown):
            return False
        return self._trigger(fragmentation=fragmentation,
                             port_idle=port_idle)

    def _trigger(self, *, fragmentation: float, port_idle: bool) -> bool:
        """Policy-specific trigger condition (guards already applied)."""
        return False

    def note_attempt(self, now: float) -> None:
        """Start the cooldown window: a consolidation was attempted at
        ``now`` (whether or not the planner found profitable moves)."""
        self._last_attempt = now

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class NeverDefrag(DefragPolicy):
    """No rearrangement, reactive or proactive: the pure-fragmentation
    baseline (requests that do not fit simply fail)."""

    name = "never"
    reactive = False
    proactive = False


class OnFailureDefrag(DefragPolicy):
    """Reactive-only rearrangement — the historical manager behaviour."""

    name = "on-failure"
    reactive = True
    proactive = False


class ThresholdDefrag(DefragPolicy):
    """Consolidate whenever fragmentation crosses ``threshold``.

    The fragmentation index is 1 minus the largest-free-rectangle share
    of the free area (see :mod:`repro.placement.metrics`), so a
    threshold of 0.3 reads: act once less than 70 % of the free space is
    usable as one rectangle.
    """

    name = "threshold"
    proactive = True

    def __init__(self, threshold: float = 0.3,
                 cooldown: float = 0.25) -> None:
        super().__init__(cooldown=cooldown)
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold

    def _trigger(self, *, fragmentation: float, port_idle: bool) -> bool:
        """Fire on the fragmentation threshold, port state ignored."""
        return fragmentation >= self.threshold


class IdleDefrag(DefragPolicy):
    """Consolidate whenever the reconfiguration port is idle.

    ``min_fragmentation`` keeps the policy from planning pointless moves
    on an already-contiguous free space; beyond that, any idle port
    cycle is fair game — the paper's argument that concurrent relocation
    makes background rearrangement effectively free for the moved
    functions (only the port is busy, and it was idle anyway).
    """

    name = "idle"
    proactive = True

    def __init__(self, min_fragmentation: float = 0.1,
                 cooldown: float = 0.25) -> None:
        super().__init__(cooldown=cooldown)
        if not 0.0 <= min_fragmentation <= 1.0:
            raise ValueError("min_fragmentation must be in [0, 1]")
        self.min_fragmentation = min_fragmentation

    def _trigger(self, *, fragmentation: float, port_idle: bool) -> bool:
        """Fire only when the port is idle and fragmentation is real."""
        return port_idle and fragmentation >= self.min_fragmentation


#: Policy registry behind :func:`make_defrag_policy`.
_POLICIES: dict[str, type[DefragPolicy]] = {
    "never": NeverDefrag,
    "on-failure": OnFailureDefrag,
    "threshold": ThresholdDefrag,
    "idle": IdleDefrag,
}


def make_defrag_policy(name: str, **params) -> DefragPolicy:
    """Construct a defrag trigger policy by registry name.

    ``params`` are forwarded to the policy constructor (``threshold``,
    ``min_fragmentation``, ``cooldown``, ...).
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        known = ", ".join(DEFRAG_POLICY_NAMES)
        raise KeyError(
            f"unknown defrag policy {name!r}; known: {known}"
        ) from None
    return cls(**params)
