"""Whole-function relocation: moving a running function's footprint.

Section 3 of the paper scales the per-CLB mechanism up to functions:

    "Therefore, the relocation of the CLBs should be performed to nearby
    CLBs.  If necessary, the relocation of a complete function may take
    place in several stages, to avoid an excessive increase in path
    delays during the relocation interval."

:class:`FunctionRelocator` executes a manager-level move (one function's
rectangle to a new origin) as a sequence of per-cell dynamic relocations
on the live design — the physical realisation of the CONCURRENT policy
in ``repro.core.manager``.  Long moves can be staged into hops so that
every individual relocation stays nearby.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.device.geometry import CellCoord, ClbCoord, Rect

from .procedure import RelocationVeto
from .relocation import RelocationEngine, RelocationReport


@dataclass
class FunctionMoveReport:
    """Record of one whole-function relocation."""

    owner: int
    src: Rect
    dst: Rect
    stages: list[Rect] = field(default_factory=list)
    cell_reports: list[RelocationReport] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Total configuration-port time of all per-cell relocations."""
        return sum(r.total_seconds for r in self.cell_reports)

    @property
    def cells_moved(self) -> int:
        """Number of per-cell relocations executed."""
        return len(self.cell_reports)

    @property
    def transparent(self) -> bool:
        """True when every per-cell relocation was transparent."""
        return all(r.transparent for r in self.cell_reports)

    def __str__(self) -> str:
        status = "transparent" if self.transparent else "DISTURBED"
        return (
            f"<function move #{self.owner} {self.src}->{self.dst}: "
            f"{self.cells_moved} cells, {len(self.stages)} stage(s), "
            f"{self.total_seconds * 1e3:.1f} ms, {status}>"
        )


class FunctionRelocator:
    """Moves a whole mapped design to a new footprint, live."""

    def __init__(self, engine: RelocationEngine) -> None:
        self.engine = engine
        self.design = engine.design

    def relocate_function(self, dst_origin: ClbCoord,
                          max_hop_columns: int | None = None) -> FunctionMoveReport:
        """Move the design's footprint so its top-left corner lands on
        ``dst_origin``.

        With ``max_hop_columns`` the move is staged into column hops of
        at most that width (the paper's staging advice); each stage is a
        complete, transparent function move.  Raises
        :class:`RelocationVeto` when a stage's destination is not free.
        """
        src = self.design.region
        dst = Rect(dst_origin.row, dst_origin.col, src.height, src.width)
        report = FunctionMoveReport(self.design.owner, src, dst)
        for stage in self._stages(src, dst, max_hop_columns):
            self._move_once(stage, report)
            report.stages.append(stage)
        return report

    def _stages(self, src: Rect, dst: Rect,
                max_hop_columns: int | None) -> list[Rect]:
        """Intermediate footprints between src and dst."""
        if max_hop_columns is None or max_hop_columns < 1:
            return [dst]
        stages: list[Rect] = []
        at = src
        while at != dst:
            dcol = dst.col - at.col
            drow = dst.row - at.row
            hop_c = at.col + max(-max_hop_columns, min(max_hop_columns, dcol))
            hop_r = at.row + max(-max_hop_columns, min(max_hop_columns, drow))
            at = Rect(hop_r, hop_c, src.height, src.width)
            stages.append(at)
        return stages

    def _move_once(self, dst: Rect, report: FunctionMoveReport) -> None:
        """One stage: relocate every placed cell by the same offset."""
        design = self.design
        fabric = design.fabric
        src = design.region
        if (src.height, src.width) != (dst.height, dst.width):
            raise RelocationVeto("function move must preserve the footprint")
        if not fabric.in_bounds(dst):
            raise RelocationVeto(f"stage destination {dst} out of bounds")
        for site in dst.sites():
            occupant = fabric.occupant(site)
            if occupant not in (0, design.owner):
                raise RelocationVeto(
                    f"stage destination {dst} overlaps function {occupant}"
                )
        if dst.overlaps(src):
            raise RelocationVeto(
                f"stage {src}->{dst} overlaps itself; use staging hops "
                "at least the footprint width apart"
            )
        drow, dcol = dst.row - src.row, dst.col - src.col
        fabric.allocate_region(dst, design.owner)
        for cell_name in sorted(design.placement):
            site = design.placement[cell_name]
            if not src.contains(site.clb):
                continue
            target = CellCoord(site.row + drow, site.col + dcol, site.cell)
            cell_report = self.engine.relocate(cell_name, target)
            report.cell_reports.append(cell_report)
        fabric.free_region(src, design.owner)
        design.region = dst
