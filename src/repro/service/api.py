"""The asyncio HTTP face of the always-on service.

A deliberately small REST/JSON layer over :class:`ReproService`, built
on ``asyncio.start_server`` alone — no web framework, no new
dependencies, one connection per request.  Everything runs on a single
event loop and the service core is synchronous, so handlers need no
locks and the service stays deterministic under concurrent clients
(requests are serialized at the loop).

Endpoints (all bodies JSON unless noted):

========  ======================  ==========================================
method    path                    behaviour
========  ======================  ==========================================
GET       /healthz                liveness + clock + task counts
GET       /qos                    the QoS class registry
POST      /tasks                  submit (``{height, width, exec_seconds,
                                  tenant?, qos?, max_wait?, at?}``); 202 on
                                  admit, **429 + Retry-After** on throttle
GET       /tasks                  task views (``?state=``, ``?limit=``)
GET       /tasks/{id}             one task's view (404 unknown)
DELETE    /tasks/{id}             cancel (409 already terminal)
POST      /clock/advance          ``{seconds}`` or ``{until}``; moves the
                                  simulated clock, firing due events
POST      /clock/settle           drain every pending event
GET       /telemetry              latest sample + live queue/run counts
GET       /telemetry/stream       **NDJSON**: history then live samples
                                  (``?limit=N`` closes after N lines,
                                  ``?history=0`` skips the backlog)
GET       /stats                  run metrics + per-tenant door counters
POST      /faults                 inject a fault (``{kind, member?, row?,
                                  col?, height?, width?, duration?,
                                  retries?, backoff?}``); kinds are
                                  ``member-death`` / ``region-stuck`` /
                                  ``port-flaky``; returns the recovery
                                  summary
POST      /checkpoint             snapshot; returns it (or writes
                                  ``{path}`` and returns the path)
POST      /restore                swap in a service restored from the
                                  posted snapshot (or from ``{path}``)
POST      /shutdown               resolve :attr:`ServiceAPI.shutdown`
========  ======================  ==========================================

Simulated time never advances on its own: clients move it via ``at``
submission stamps or ``/clock/advance`` (``python -m repro.service
--auto-advance`` adds a wall-clock ticker for interactive use).
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs, urlsplit

from . import checkpoint
from .app import ReproService
from .qos import QOS_CLASSES

#: HTTP reason phrases for the status codes the API emits.
_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    429: "Too Many Requests", 500: "Internal Server Error",
}


class _HttpError(Exception):
    """A handler-raised HTTP failure (status + JSON payload)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.payload = {"error": message}


class ServiceAPI:
    """Serve one :class:`ReproService` over HTTP.

    Construct with the service, :meth:`start` on a host/port (port 0
    picks an ephemeral one — the tests do), then await
    :attr:`shutdown` or :meth:`stop` explicitly.  ``/restore`` swaps
    :attr:`service` in place; new requests see the restored instance.
    """

    def __init__(self, service: ReproService) -> None:
        self.service = service
        self._server: asyncio.AbstractServer | None = None
        #: resolved by ``POST /shutdown`` (or anyone); the ``__main__``
        #: runner awaits it alongside the signal handlers.
        self.shutdown = asyncio.Event()

    async def start(self, host: str = "127.0.0.1",
                    port: int = 8327) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(self._handle, host, port)
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) of a started server."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        """Stop accepting connections and close the server."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """Serve one request on one connection, then close it."""
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, query, body = parsed
            if method == "GET" and path == "/telemetry/stream":
                await self._stream_telemetry(writer, query)
                return
            try:
                status, payload, headers = self._dispatch(
                    method, path, query, body
                )
            except _HttpError as exc:
                status, payload, headers = exc.status, exc.payload, {}
            except (KeyError, ValueError) as exc:
                status, payload, headers = 400, {"error": str(exc)}, {}
            await self._respond(writer, status, payload, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP request; None on empty/closed connections."""
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = {}
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError:
                raise _HttpError(400, "request body is not JSON") from None
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        return method.upper(), split.path.rstrip("/") or "/", query, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict, headers: dict | None = None) -> None:
        """Write one JSON response and flush it."""
        data = (json.dumps(payload) + "\n").encode()
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(data)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + data)
        await writer.drain()

    # -- routing -------------------------------------------------------------

    def _dispatch(self, method: str, path: str, query: dict,
                  body: dict) -> tuple[int, dict, dict]:
        """Route one request; returns (status, payload, extra headers)."""
        service = self.service
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "ok",
                "now": service.now,
                "tasks": len(service.engine.tasks),
                "waiting": len(service.engine.kernel.queue),
            }, {}
        if path == "/qos" and method == "GET":
            return 200, {
                name: {"priority": qos.priority, "rate": qos.rate,
                       "burst": qos.burst, "patience": qos.patience}
                for name, qos in QOS_CLASSES.items()
            }, {}
        if path == "/tasks" and method == "POST":
            return self._submit(body)
        if path == "/tasks" and method == "GET":
            limit = int(query["limit"]) if "limit" in query else None
            return 200, {
                "tasks": service.tasks(state=query.get("state"),
                                       limit=limit)
            }, {}
        if path.startswith("/tasks/"):
            return self._task_detail(method, path)
        if path == "/clock/advance" and method == "POST":
            now = service.advance(
                until=body.get("until"),
                seconds=body.get("seconds"),
            )
            return 200, {"now": now}, {}
        if path == "/clock/settle" and method == "POST":
            return 200, {"now": service.settle()}, {}
        if path == "/telemetry" and method == "GET":
            return 200, service.telemetry(), {}
        if path == "/stats" and method == "GET":
            return 200, service.stats(), {}
        if path == "/faults" and method == "POST":
            return self._inject_fault(body)
        if path == "/checkpoint" and method == "POST":
            if body.get("path"):
                saved = checkpoint.save(service, body["path"])
                return 200, {"saved": str(saved)}, {}
            return 200, checkpoint.snapshot(service), {}
        if path == "/restore" and method == "POST":
            if body.get("path"):
                self.service = checkpoint.load(body["path"])
            else:
                self.service = checkpoint.restore(body)
            return 200, {"status": "restored",
                         "now": self.service.now}, {}
        if path == "/shutdown" and method == "POST":
            self.shutdown.set()
            return 200, {"status": "shutting-down"}, {}
        raise _HttpError(404, f"no route for {method} {path}")

    def _submit(self, body: dict) -> tuple[int, dict, dict]:
        """POST /tasks: one submission through the admission door."""
        try:
            view = self.service.submit(
                int(body["height"]), int(body["width"]),
                float(body["exec_seconds"]),
                tenant=str(body.get("tenant", "default")),
                qos=str(body.get("qos", "best-effort")),
                max_wait=body.get("max_wait"),
                at=body.get("at"),
            )
        except KeyError as exc:
            raise _HttpError(400, f"missing field {exc}") from None
        if not view["admitted"]:
            return 429, view, {"Retry-After": f"{view['retry_after']:.3f}"}
        return 202, view, {}

    def _inject_fault(self, body: dict) -> tuple[int, dict, dict]:
        """POST /faults: chaos injection into the live service."""
        try:
            kind = str(body["kind"])
        except KeyError:
            raise _HttpError(400, "missing field 'kind'") from None
        duration = body.get("duration")
        summary = self.service.inject_fault(
            kind,
            member=int(body.get("member", 0)),
            row=int(body.get("row", 0)),
            col=int(body.get("col", 0)),
            height=int(body.get("height", 0)),
            width=int(body.get("width", 0)),
            duration=float(duration) if duration is not None else None,
            retries=int(body.get("retries", 3)),
            backoff=float(body.get("backoff", 0.2)),
        )
        return 200, summary, {}

    def _task_detail(self, method: str, path: str) -> tuple[int, dict, dict]:
        """GET/DELETE /tasks/{id}."""
        try:
            task_id = int(path.rsplit("/", 1)[1])
        except ValueError:
            raise _HttpError(400, "task id must be an integer") from None
        try:
            if method == "GET":
                return 200, self.service.status(task_id), {}
            if method == "DELETE":
                return 200, self.service.cancel(task_id), {}
        except KeyError:
            raise _HttpError(404, f"unknown task {task_id}") from None
        except ValueError as exc:
            raise _HttpError(409, str(exc)) from None
        raise _HttpError(405, f"{method} not allowed on {path}")

    # -- telemetry streaming -------------------------------------------------

    async def _stream_telemetry(self, writer: asyncio.StreamWriter,
                                query: dict) -> None:
        """GET /telemetry/stream: NDJSON, backlog then live samples.

        Subscribes to the engine's telemetry listeners; every sample the
        service records (admissions, finishes, cancellations) is pushed
        to the client as one JSON line.  ``limit`` bounds the total
        lines (the tests' termination condition); ``history=0`` skips
        the backlog.  The subscription is dropped when the client
        disconnects or the limit is reached.
        """
        limit = int(query.get("limit", 0)) or None
        engine = self.service.engine
        backlog = (list(engine.telemetry)
                   if query.get("history", "1") != "0" else [])
        feed: asyncio.Queue = asyncio.Queue()
        listener = feed.put_nowait
        engine.telemetry_listeners.append(listener)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        sent = 0
        try:
            await writer.drain()
            for entry in backlog:
                writer.write((json.dumps(entry) + "\n").encode())
                await writer.drain()
                sent += 1
                if limit is not None and sent >= limit:
                    return
            while limit is None or sent < limit:
                entry = await feed.get()
                writer.write((json.dumps(entry) + "\n").encode())
                await writer.drain()
                sent += 1
        except ConnectionError:
            pass
        finally:
            try:
                engine.telemetry_listeners.remove(listener)
            except ValueError:
                pass
