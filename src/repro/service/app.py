"""The always-on admission service core: an online front over the kernel.

The paper's run-time manager is inherently *online* — functions arrive,
are admitted or refused, execute and leave while the system keeps
running — but the batch campaigns (:mod:`repro.campaign`) always drain
a pre-generated stream to completion.  :class:`ReproService` closes
that gap: it keeps a :class:`~repro.sched.kernel.SchedulingKernel` (over
a single :class:`~repro.core.manager.LogicSpaceManager` or a
:class:`~repro.fleet.manager.FleetManager`) alive indefinitely and
feeds it submissions one at a time, advancing the simulated clock with
the external-clock hooks the kernel grew for exactly this
(:meth:`~repro.sched.kernel.SchedulingKernel.advance`).

Division of labour:

* :class:`ServiceEngine` — the *strategy layer*: an incremental
  :class:`~repro.sched.scheduler.OnlineTaskScheduler` that accepts
  tasks one by one, journals every life-cycle event (submitted /
  admitted / finished / rejected / cancelled) with a monotonic
  sequence, records telemetry samples, and supports cancelling queued
  *and* running work;
* :class:`ReproService` — the service: the admission door
  (:mod:`repro.service.admission`) in front of the engine, per-task
  tenant/QoS metadata, and the checkpoint hooks
  (:mod:`repro.service.checkpoint`).

Everything here is synchronous and deterministic; the asyncio HTTP
layer (:mod:`repro.service.api`) calls into it from a single event
loop, so no locking is needed and a service run replays bit-identically
from its inputs — the property the checkpoint round-trip test pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.cost import CostModel
from repro.core.manager import (
    LogicSpaceManager,
    PlacementOutcome,
    RearrangePolicy,
)
from repro.device.devices import device as device_by_name
from repro.device.fabric import Fabric
from repro.fleet.manager import FleetManager
from repro.perf import PERF
from repro.sched.scheduler import OnlineTaskScheduler
from repro.sched.tasks import Task, TaskState

from .admission import DEFAULT_MAX_QUEUE_DEPTH, AdmissionController
from .qos import get_qos


@dataclass(frozen=True)
class ServiceConfig:
    """Everything needed to (re)build a service's scheduling stack.

    The config is serialized into every checkpoint, so a snapshot is
    self-describing: :func:`repro.service.checkpoint.restore` rebuilds
    the identical manager/kernel stack before loading the state into it.
    """

    device: str = "XC2S15"
    fleet_size: int = 1
    #: explicit member device names *appended after* ``device`` (the
    #: same convention as the campaign's ``fleet_devices`` axis);
    #: empty = ``fleet_size`` copies of ``device``.
    fleet_devices: tuple[str, ...] = ()
    device_policy: str = "first-fit"
    queue: str = "priority"
    ports: str = "serial"
    rearrange: str = "concurrent"
    fit: str = "first"
    defrag: str = "on-failure"
    max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH
    #: prefetch mode for the kernel's resident-bitstream cache and
    #: planner (:data:`repro.sched.prefetch.PREFETCH_MODES`).
    prefetch: str = "never"

    def member_names(self) -> tuple[str, ...]:
        """The fleet's member device names, primary first."""
        if self.fleet_devices:
            return (self.device, *self.fleet_devices)
        return (self.device,) * self.fleet_size

    def to_dict(self) -> dict:
        """JSON-ready config (checkpoint header)."""
        return {
            "device": self.device,
            "fleet_size": self.fleet_size,
            "fleet_devices": list(self.fleet_devices),
            "device_policy": self.device_policy,
            "queue": self.queue,
            "ports": self.ports,
            "rearrange": self.rearrange,
            "fit": self.fit,
            "defrag": self.defrag,
            "max_queue_depth": self.max_queue_depth,
            "prefetch": self.prefetch,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        data = dict(data)
        data["fleet_devices"] = tuple(data.get("fleet_devices", ()))
        return cls(**data)


def build_manager(config: ServiceConfig) -> LogicSpaceManager | FleetManager:
    """Construct the (fleet of) manager(s) a service config describes.

    Mirrors the campaign runner's construction rules: a 1-member
    default-policy fleet collapses to the plain single-device manager,
    so a small service is event-for-event comparable to the equivalent
    batch scenario.
    """
    def member(name: str) -> LogicSpaceManager:
        dev = device_by_name(name)
        return LogicSpaceManager(
            Fabric(dev),
            cost_model=CostModel(dev),
            policy=RearrangePolicy(config.rearrange),
            fit=config.fit,
            defrag_policy=config.defrag,
        )

    names = config.member_names()
    if len(names) == 1:
        return member(names[0])
    return FleetManager([member(name) for name in names],
                        policy=config.device_policy)


class ServiceEngine(OnlineTaskScheduler):
    """Incremental task scheduler with a journal and cancellation.

    Extends the batch :class:`~repro.sched.scheduler.OnlineTaskScheduler`
    with what a long-running front door needs: tasks are submitted one
    at a time at the current simulated instant, every life-cycle
    transition is appended to :attr:`journal` (the stream the
    checkpoint round-trip test compares bit-for-bit), telemetry samples
    accumulate in :attr:`telemetry`, and both queued and running tasks
    can be cancelled through the API.
    """

    def __init__(self, manager, queue: str = "priority",
                 ports: str = "serial", prefetch: str = "never") -> None:
        super().__init__(manager, queue=queue, ports=ports,
                         prefetch_mode=prefetch)
        #: every task ever submitted, by id (the service's registry).
        self.tasks: dict[int, Task] = {}
        #: task id -> fleet member that hosts/hosted it (admitted only).
        self.devices: dict[int, int] = {}
        #: ordered life-cycle event stream (see :meth:`_journal`).
        self.journal: list[dict] = []
        #: telemetry sample stream (see :meth:`_record_telemetry`).
        self.telemetry: list[dict] = []
        #: listeners notified with every new telemetry entry (the API
        #: layer's NDJSON subscribers).
        self.telemetry_listeners: list[Callable[[dict], None]] = []
        self._next_task_id = 1
        self._journal_seq = 0

    # -- submission + clock --------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.events.now

    def submit(self, height: int, width: int, exec_seconds: float, *,
               max_wait: float | None = None, priority: int = 0) -> Task:
        """Accept one task at the current instant and try to admit it.

        The task arrives *now* (an always-on service has no future
        arrival table); admission, and possibly configuration, happen
        synchronously through the kernel's usual drain.  Returns the
        registered :class:`~repro.sched.tasks.Task`, whose state tells
        the caller whether it was placed immediately or queued.
        """
        task = Task(
            task_id=self._next_task_id,
            height=height,
            width=width,
            exec_seconds=exec_seconds,
            arrival=self.now,
            max_wait=max_wait,
            priority=priority,
        )
        self._next_task_id += 1
        self.tasks[task.task_id] = task
        self._journal("submitted", task)
        self._on_arrival(task)
        return task

    def advance(self, until: float) -> None:
        """Advance the simulated clock, processing due events."""
        self.kernel.advance(until)

    def settle(self) -> None:
        """Drain every pending event (all running work completes, every
        queued task is admitted or times out) and stamp the metrics —
        the batch-mode escape hatch used by replays and benchmarks."""
        self.kernel.run()

    # -- cancellation --------------------------------------------------------

    def cancel(self, task_id: int) -> Task:
        """Cancel a task by id, wherever it is in its life-cycle.

        Queued tasks are tombstoned out of the admission queue; a
        configuring/running task has its finish event cancelled and its
        region released (freeing space wakes waiting work, exactly like
        a natural finish).  Cancelling an already-terminal task raises
        :class:`ValueError`; an unknown id raises :class:`KeyError`.
        """
        task = self.tasks.get(task_id)
        if task is None:
            raise KeyError(f"unknown task {task_id}")
        if task.state is TaskState.QUEUED:
            task.state = TaskState.CANCELLED
            self._journal("cancelled", task)
            self.kernel.cancel(task)
            return task
        if task_id in self._running_tasks:
            entry = self.kernel.running.get(task_id)
            if entry is not None:
                entry[1].cancel()
            self.kernel.finish_running(task_id)
            self._running_tasks.pop(task_id, None)
            self.manager.release(task_id)
            task.state = TaskState.CANCELLED
            self._journal("cancelled", task)
            self.kernel.note_space_changed()
            self.kernel.sample()
            self._record_telemetry()
            self.kernel.drain()
            return task
        raise ValueError(
            f"task {task_id} is {task.state.value}; nothing to cancel"
        )

    # -- journal + telemetry -------------------------------------------------

    def _journal(self, event: str, task: Task) -> None:
        """Append one life-cycle event to the journal."""
        self.journal.append({
            "seq": self._journal_seq,
            "t": self.now,
            "event": event,
            "task": task.task_id,
        })
        self._journal_seq += 1

    def _record_telemetry(self) -> None:
        """Append one telemetry sample (after a kernel sample) and fan
        it out to the registered listeners."""
        metrics = self.metrics
        entry = {
            "t": self.now,
            "waiting": len(self.kernel.queue),
            "running": len(self._running_tasks),
            "fragmentation": (metrics.fragmentation_samples[-1]
                              if metrics.fragmentation_samples else 0.0),
            "utilization": (metrics.utilization_samples[-1]
                            if metrics.utilization_samples else 0.0),
            "members": [list(pair) for pair in self.kernel.member_samples],
        }
        self.telemetry.append(entry)
        for listener in list(self.telemetry_listeners):
            listener(entry)

    # -- scheduler hook overrides -------------------------------------------

    def _on_admitted(self, task: Task, outcome: PlacementOutcome) -> None:
        """Journal the admission (and its hosting device) on top of the
        batch scheduler's configuration/execution bookkeeping."""
        super()._on_admitted(task, outcome)
        self.devices[task.task_id] = outcome.device
        self._journal("admitted", task)
        self._record_telemetry()

    def _on_finish(self, task: Task) -> None:
        """Journal the completion on top of the batch bookkeeping."""
        super()._on_finish(task)
        self._journal("finished", task)
        self._record_telemetry()

    def _on_timeout(self, task: Task, epoch: int | None = None) -> None:
        """Journal a patience rejection (no-op if no longer queued)."""
        was_queued = task.state is TaskState.QUEUED
        super()._on_timeout(task, epoch)
        if was_queued and task.state is TaskState.REJECTED:
            self._journal("rejected", task)

    def _on_relocated(self, task: Task,
                      outcome: PlacementOutcome) -> None:
        """Journal a fault-driven relocation and re-point the task's
        hosting device at the surviving member."""
        self.devices[task.task_id] = outcome.device
        self._journal("relocated", task)
        self._record_telemetry()

    def _on_restarted(self, task: Task) -> None:
        """Journal a fault-driven restart (the task re-queued from
        scratch; its old hosting device is gone)."""
        self.devices.pop(task.task_id, None)
        self._journal("restarted", task)
        self._record_telemetry()

    def _on_dropped(self, task: Task) -> None:
        """Journal a fault drop (no surviving fabric fits the task)."""
        self.devices.pop(task.task_id, None)
        self._journal("dropped", task)
        self._record_telemetry()


class ReproService:
    """The always-on admission service: door + engine + metadata.

    Construct with a :class:`ServiceConfig` (or keyword overrides for
    one), then drive it with :meth:`submit` / :meth:`advance` /
    :meth:`cancel` / :meth:`status`.  All time is *simulated* seconds:
    the clock only moves when the caller advances it (each submission
    may carry an ``at`` instant, and the HTTP layer exposes an explicit
    advance endpoint plus an optional wall-clock ticker), which is what
    keeps an always-on service exactly as deterministic — and therefore
    checkpointable — as a batch campaign.
    """

    def __init__(self, config: ServiceConfig | None = None, **overrides):
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            raise ValueError("pass a config or overrides, not both")
        self.config = config
        self.manager = build_manager(config)
        self.engine = ServiceEngine(self.manager, queue=config.queue,
                                    ports=config.ports,
                                    prefetch=config.prefetch)
        self.door = AdmissionController(
            max_queue_depth=config.max_queue_depth
        )
        #: task id -> (tenant, qos class name) submission metadata.
        self.task_meta: dict[int, tuple[str, str]] = {}

    # -- the front door ------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.engine.now

    def submit(self, height: int, width: int, exec_seconds: float, *,
               tenant: str = "default", qos: str = "best-effort",
               max_wait: float | None = None,
               at: float | None = None) -> dict:
        """Submit one task through the admission door.

        ``at`` (>= now) advances the clock to the arrival instant first
        — replay drivers use it to feed seeded workloads with their
        original timing.  The door may refuse with a rate-limit or
        queue-depth throttle; the returned view then carries
        ``admitted: False`` plus ``retry_after``/``reason`` (the HTTP
        layer turns it into a 429).  Admitted submissions return the
        task's status view (``admitted: True``).
        """
        if at is not None:
            self.advance(at)
        decision = self.door.admit(tenant, qos, self.now,
                                   len(self.engine.kernel.queue))
        if not decision.admitted:
            return {
                "admitted": False,
                "tenant": tenant,
                "qos": decision.qos.name,
                "reason": decision.reason,
                "retry_after": decision.retry_after,
            }
        patience = max_wait if max_wait is not None else decision.qos.patience
        task = self.engine.submit(
            height, width, exec_seconds,
            max_wait=patience,
            priority=decision.qos.priority,
        )
        self.task_meta[task.task_id] = (tenant, decision.qos.name)
        view = self.status(task.task_id)
        view["admitted"] = True
        return view

    def advance(self, until: float | None = None,
                seconds: float | None = None) -> float:
        """Advance the simulated clock (absolute or relative); returns
        the new instant."""
        if (until is None) == (seconds is None):
            raise ValueError("pass exactly one of until/seconds")
        target = until if until is not None else self.now + seconds
        self.engine.advance(target)
        return self.now

    def settle(self) -> float:
        """Drain all pending events; returns the final instant."""
        self.engine.settle()
        return self.now

    def cancel(self, task_id: int) -> dict:
        """Cancel a task by id; returns its refreshed status view."""
        self.engine.cancel(task_id)
        return self.status(task_id)

    def inject_fault(self, kind: str, *, member: int = 0, row: int = 0,
                     col: int = 0, height: int = 0, width: int = 0,
                     duration: float | None = None, retries: int = 3,
                     backoff: float = 0.2) -> dict:
        """Inject one fault into the live service (chaos endpoint).

        ``kind`` selects the fault machinery the batch fault plans use
        (:mod:`repro.faults`): ``member-death`` fails ``member`` over
        onto the survivors, ``region-stuck`` blocks a fabric region
        (healing after ``duration`` if given), ``port-flaky`` costs
        ``retries * backoff`` seconds of configuration-port retries.
        Returns a summary of what the fault displaced; raises
        :class:`ValueError` on unknown kinds, bad targets, or a
        member-death without a fleet.
        """
        if kind == "member-death":
            summary = self.engine.kill_member(member)
        elif kind == "region-stuck":
            summary = self.engine.inject_region_fault(
                member, row, col, height, width, duration=duration
            )
        elif kind == "port-flaky":
            summary = {
                "member": member,
                "retry_seconds": self.engine.flake_port(
                    member, retries=retries, backoff=backoff
                ),
            }
        else:
            raise ValueError(
                f"unknown fault kind {kind!r} (choose from "
                "member-death, region-stuck, port-flaky)"
            )
        return {"kind": kind, "now": self.now, **summary}

    # -- introspection -------------------------------------------------------

    def status(self, task_id: int) -> dict:
        """Status view of one task (:class:`KeyError` on unknown ids)."""
        task = self.engine.tasks.get(task_id)
        if task is None:
            raise KeyError(f"unknown task {task_id}")
        tenant, qos = self.task_meta.get(task_id, ("default",
                                                   "best-effort"))
        rect = task.rect
        return {
            "task": task.task_id,
            "state": task.state.value,
            "tenant": tenant,
            "qos": qos,
            "height": task.height,
            "width": task.width,
            "exec_seconds": task.exec_seconds,
            "arrival": task.arrival,
            "max_wait": task.max_wait,
            "priority": task.priority,
            "device": self.engine.devices.get(task.task_id),
            "rect": ([rect.row, rect.col, rect.height, rect.width]
                     if rect is not None else None),
            "configured_at": task.configured_at,
            "started_at": task.started_at,
            "finished_at": task.finished_at,
        }

    def tasks(self, state: str | None = None,
              limit: int | None = None) -> list[dict]:
        """Status views of registered tasks, newest first."""
        views = [
            self.status(task_id)
            for task_id in sorted(self.engine.tasks, reverse=True)
        ]
        if state is not None:
            views = [v for v in views if v["state"] == state]
        if limit is not None:
            views = views[:limit]
        return views

    def telemetry(self) -> dict:
        """Current telemetry snapshot (latest sample + live queue/run
        counts), regardless of when the kernel last sampled."""
        latest = (self.engine.telemetry[-1]
                  if self.engine.telemetry else None)
        return {
            "now": self.now,
            "waiting": len(self.engine.kernel.queue),
            "running": len(self.engine._running_tasks),
            "last_sample": latest,
        }

    def stats(self) -> dict:
        """Door + run statistics (the ``/stats`` endpoint payload)."""
        metrics = self.engine.metrics
        return {
            "now": self.now,
            "tasks": len(self.engine.tasks),
            "waiting": len(self.engine.kernel.queue),
            "running": len(self.engine._running_tasks),
            "finished": metrics.finished,
            "rejected": metrics.rejected,
            "mean_waiting": metrics.mean_waiting,
            "mean_turnaround": metrics.mean_turnaround,
            "port_busy_seconds": self.engine.kernel.port_busy_seconds,
            # Fault/failover counters (all zero until a fault is
            # injected; see :meth:`inject_fault`).
            "faults_injected": metrics.faults_injected,
            "members_lost": metrics.members_lost,
            "relocated": metrics.relocated_tasks,
            "restarted": metrics.restarted_tasks,
            "dropped": metrics.dropped_tasks,
            "tenants": {
                tenant: stats.to_dict()
                for tenant, stats in sorted(self.door.stats.items())
            },
            # Hot-path cache/memo counters (process-wide, monotonic
            # since start or the harness's last reset) — the live
            # counterpart of the per-cell samples BENCH_sched.json
            # commits; see ``repro.perf``.
            "perf": PERF.snapshot(),
        }
