"""QoS classes: the service's tenant-facing tiers over the kernel.

Ullmann et al. (*Hardware Support for QoS-based Function Allocation in
Reconfigurable Systems*, PAPERS.md) argue that an on-demand
reconfigurable platform needs explicit quality-of-service classes at
the allocation door, not just a best-effort queue.  The always-on
service maps three such classes straight onto machinery the scheduling
layer already has:

* the class **priority** feeds the ``priority`` queue discipline
  (:mod:`repro.sched.queues`), so a queued gold request is attempted
  before silver and best-effort work whenever space frees up;
* the class **rate/burst** parameterise the per-tenant token buckets of
  the admission door (:mod:`repro.service.admission`), so a tenant's
  gold budget is narrower but firmer than its best-effort firehose;
* the class **patience** becomes the task's ``max_wait``: gold work is
  queued longest before the service gives up on it.

Nothing below the service knows about classes — by the time a request
reaches the kernel it is an ordinary prioritised
:class:`~repro.sched.tasks.Task`, which is exactly what keeps the
batch campaigns and the service bit-compatible.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QosClass:
    """One service tier and its admission parameters."""

    #: registry name (``gold`` / ``silver`` / ``best-effort``).
    name: str
    #: queue-discipline priority (higher = attempted first).
    priority: int
    #: token-bucket refill rate, requests per simulated second.
    rate: float
    #: token-bucket capacity (burst tolerance).
    burst: float
    #: default queueing patience in simulated seconds before the
    #: service abandons the request (``None`` = wait forever).
    patience: float | None


#: The service's QoS registry, ordered best to worst.  Rates are
#: deliberately tighter for the better classes: a gold tenant buys
#: *admission order*, not unmetered volume.
QOS_CLASSES: dict[str, QosClass] = {
    "gold": QosClass("gold", priority=2, rate=20.0, burst=10.0,
                     patience=8.0),
    "silver": QosClass("silver", priority=1, rate=40.0, burst=20.0,
                       patience=4.0),
    "best-effort": QosClass("best-effort", priority=0, rate=80.0,
                            burst=40.0, patience=2.0),
}

#: Valid QoS class names, best first.
QOS_NAMES = tuple(QOS_CLASSES)


def get_qos(name: str) -> QosClass:
    """Look up a QoS class by name (:class:`ValueError` on unknowns)."""
    try:
        return QOS_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown QoS class {name!r}; choose from {QOS_NAMES}"
        ) from None


def qos_for_priority(priority: int) -> str:
    """Map a workload task's integer priority onto a QoS class name.

    The replay driver (:mod:`repro.campaign.replay`) uses this to turn
    the seeded campaign workloads — whose generators draw integer
    priority levels — into service traffic: 0 is best-effort, 1 silver,
    anything higher gold.  The mapping is the inverse of the class
    ``priority`` field, so a replayed stream keeps its admission order.
    """
    if priority <= 0:
        return "best-effort"
    if priority == 1:
        return "silver"
    return "gold"
