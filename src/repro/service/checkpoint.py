"""Checkpoint/restore: freeze an always-on service, thaw it elsewhere.

A service run is deterministic — every state transition is a function
of the submissions and the simulated clock — so its full state fits in
a plain JSON document: the :class:`~repro.service.app.ServiceConfig`
(which rebuilds the manager/kernel stack), every registered task, the
waiting queue in discipline order, the in-flight executions with their
finish instants, the per-device port horizons, the metrics, the
admission door's buckets and counters, and the journal/telemetry
streams recorded so far.

:func:`snapshot` reads all of that at a quiescent instant (the service
is synchronous, so *between API calls* is always quiescent);
:func:`restore` rebuilds an identical service from it.  The pinned
guarantee — asserted by the round-trip tests and re-proved by the
service benchmark — is that a restored service produces the **same
journal and telemetry streams, bit for bit**, as the original had it
never been interrupted.

Two deliberate non-goals, documented so nobody chases "missing" state:

* the manager's ``outcomes`` histories and fit-cache contents are not
  serialized — they are diagnostics/memoisation, and future behaviour
  depends only on occupancy, queue and events;
* the kernel's space-version counters restart from zero — only their
  *equality* is meaningful, and the restore re-establishes the one
  relationship that matters (a non-empty restored queue is marked
  blocked, exactly as the live kernel left it, so restoring never
  re-runs the rearrangement planner).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.core.manager import LogicSpaceManager
from repro.device.geometry import Rect
from repro.sched.kernel import ScheduleMetrics
from repro.sched.tasks import Task, TaskState

from .admission import AdmissionController
from .app import ReproService, ServiceConfig

#: Snapshot document version (bumped on incompatible layout changes).
SNAPSHOT_VERSION = 1


def _task_row(service: ReproService, task: Task) -> dict:
    """One task's serialized registry row."""
    tenant, qos = service.task_meta.get(
        task.task_id, ("default", "best-effort")
    )
    rect = task.rect
    return {
        "task": task.task_id,
        "height": task.height,
        "width": task.width,
        "exec_seconds": task.exec_seconds,
        "arrival": task.arrival,
        "max_wait": task.max_wait,
        "priority": task.priority,
        "state": task.state.value,
        "rect": ([rect.row, rect.col, rect.height, rect.width]
                 if rect is not None else None),
        "configured_at": task.configured_at,
        "started_at": task.started_at,
        "finished_at": task.finished_at,
        "halted_seconds": task.halted_seconds,
        "device": service.engine.devices.get(task.task_id),
        "tenant": tenant,
        "qos": qos,
    }


def snapshot(service: ReproService) -> dict:
    """Serialize the whole service to a JSON-ready document.

    Read-only: the service keeps running afterwards.  Call between API
    operations (the service is single-threaded, so any moment the
    caller holds control is quiescent).
    """
    engine = service.engine
    kernel = engine.kernel
    running = []
    for owner, (_, handle) in sorted(kernel.running.items()):
        # The *current* region, read from the hosting fabric — a
        # rearrangement may have relocated the task since placement, so
        # the task record's placement-time rect cannot be trusted here.
        device = engine.devices[owner]
        rect = kernel._managers[device].fabric.footprint(owner)
        running.append({
            "task": owner,
            "finish_at": handle.time,
            "rect": [rect.row, rect.col, rect.height, rect.width],
        })
    return {
        "version": SNAPSHOT_VERSION,
        "config": service.config.to_dict(),
        "clock": kernel.events.now,
        "next_task_id": engine._next_task_id,
        "journal_seq": engine._journal_seq,
        "tasks": [
            _task_row(service, engine.tasks[task_id])
            for task_id in sorted(engine.tasks)
        ],
        "queued": [
            item.task_id
            for item in kernel.queue.ordered(kernel.events.now)
        ],
        "running": running,
        "ports": [port.export_state() for port in kernel.ports],
        "defrag_last_attempt": [
            member.defrag_policy._last_attempt
            for member in kernel._managers
        ],
        "metrics": asdict(kernel.metrics),
        # Resident-bitstream caches + planner wishlist (None when the
        # service runs with prefetch="never"); the stall/prefetch
        # counters themselves travel inside "metrics" above.
        "prefetch": kernel.export_prefetch_state(),
        # Fault-injection state (None until a fault is injected): lost
        # members, active stuck-at blockers and their heal instants.
        "faults": engine.export_fault_state(),
        # True patience deadlines of the queued tasks: a fault-restarted
        # task's patience re-armed at the restart instant, so
        # arrival + max_wait would restore the wrong deadline.
        "queue_deadlines": {
            str(task_id): deadline
            for task_id, deadline in sorted(
                engine._queue_deadlines.items()
            )
        },
        "door": service.door.export_state(),
        "journal": list(engine.journal),
        "telemetry": list(engine.telemetry),
    }


def _load_task(row: dict) -> Task:
    """Rebuild one task from its registry row."""
    task = Task(
        task_id=row["task"],
        height=row["height"],
        width=row["width"],
        exec_seconds=row["exec_seconds"],
        arrival=row["arrival"],
        max_wait=row["max_wait"],
        priority=row["priority"],
    )
    task.state = TaskState(row["state"])
    if row["rect"] is not None:
        task.rect = Rect(*row["rect"])
    task.configured_at = row["configured_at"]
    task.started_at = row["started_at"]
    task.finished_at = row["finished_at"]
    task.halted_seconds = row["halted_seconds"]
    return task


def _adopt(service: ReproService, task: Task, rect: Rect) -> None:
    """Re-establish a running task's placement on its hosting fabric.

    ``rect`` is the snapshot's *current* region for the task, which may
    differ from ``task.rect`` (the placement-time record) when a
    rearrangement relocated the task while it ran.
    """
    device = service.engine.devices[task.task_id]
    manager = service.manager
    if isinstance(manager, LogicSpaceManager):
        manager.fabric.allocate_region(rect, task.task_id)
    else:
        manager.adopt(task.task_id, device, rect)


def restore(state: dict) -> ReproService:
    """Rebuild a service from a :func:`snapshot` document.

    The restored service resumes exactly where the original stood: the
    clock is at the snapshot instant, running work finishes at its
    original instants, queued work keeps its discipline order and its
    original patience deadlines, and the journal/telemetry streams
    continue with the next sequence numbers — the round-trip identity
    the tests pin.
    """
    if state.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {state.get('version')!r}"
        )
    service = ReproService(ServiceConfig.from_dict(state["config"]))
    engine = service.engine
    kernel = engine.kernel
    kernel.pause()
    kernel.events.now = float(state["clock"])
    engine._next_task_id = int(state["next_task_id"])
    engine._journal_seq = int(state["journal_seq"])
    engine.journal = [dict(entry) for entry in state["journal"]]
    engine.telemetry = [dict(entry) for entry in state["telemetry"]]

    for row in state["tasks"]:
        task = _load_task(row)
        engine.tasks[task.task_id] = task
        if row["device"] is not None:
            engine.devices[task.task_id] = row["device"]
        service.task_meta[task.task_id] = (row["tenant"], row["qos"])

    # In-flight executions: re-allocate their regions and re-schedule
    # their finish events, ordered by (finish, id) — distinct instants
    # in practice, so event order matches the uninterrupted run (and a
    # tie would be harmless anyway: timeout/finish collisions on the
    # same task are no-ops in whichever order they fire).
    for row in sorted(state["running"],
                      key=lambda r: (r["finish_at"], r["task"])):
        task = engine.tasks[row["task"]]
        _adopt(service, task, Rect(*row["rect"]))
        engine._running_tasks[task.task_id] = task
        kernel.start_running(
            task.task_id, float(row["finish_at"]),
            lambda t=task: engine._on_finish(t),
        )

    # Waiting queue: re-push in the discipline's own order (monotonic
    # sequence numbers preserve relative order under every discipline),
    # stamped with the original arrival so age-sensitive disciplines
    # (backfill's max_age) see the true queueing times.
    queued = [engine.tasks[task_id] for task_id in state["queued"]]
    for task in queued:
        kernel.queue.push(task, priority=task.priority, area=task.area,
                          now=task.arrival)
    # ... and their patience deadlines (strictly in the future: a due
    # timeout would have fired before the snapshot's quiescent point).
    # The snapshot's recorded deadline wins over arrival + max_wait — a
    # fault-restarted task re-armed its patience at the restart instant
    # (older snapshots without the key never restarted anything).
    recorded = state.get("queue_deadlines", {})
    for deadline, _task_id, task in sorted(
        (float(recorded.get(str(task.task_id),
                            task.arrival + task.max_wait)),
         task.task_id, task)
        for task in queued
        if task.max_wait is not None
    ):
        epoch = engine._queue_epochs.setdefault(task.task_id, 1)
        engine._queue_deadlines[task.task_id] = deadline
        kernel.events.at(
            deadline, lambda t=task, e=epoch: engine._on_timeout(t, e)
        )

    for port, port_state in zip(kernel.ports, state["ports"]):
        port.restore_state(port_state)
    for member, last in zip(kernel._managers,
                            state["defrag_last_attempt"]):
        member.defrag_policy._last_attempt = last
    kernel.metrics = ScheduleMetrics(**state["metrics"])
    kernel.restore_prefetch_state(state.get("prefetch"))
    engine.restore_fault_state(state.get("faults"))
    service.door = AdmissionController.from_state(state["door"])

    if queued:
        # The snapshot was taken with the queue blocked on the current
        # occupancy (drain always completes before control returns);
        # mark it so resume() does not re-plan placements that already
        # answered "no".
        kernel._failed_at_version = kernel._space_version
    kernel.resume()
    return service


def save(service: ReproService, path: str | Path) -> Path:
    """Snapshot the service to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(snapshot(service)))
    return path


def load(path: str | Path) -> ReproService:
    """Restore a service from a JSON file written by :func:`save`."""
    return restore(json.loads(Path(path).read_text()))
