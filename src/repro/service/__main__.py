"""Run the always-on admission service: ``python -m repro.service``.

Boots a :class:`~repro.service.app.ReproService` (or restores one from
a checkpoint), serves it over HTTP and runs until ``SIGINT``/``SIGTERM``
or a ``POST /shutdown`` — optionally writing a checkpoint on the way
out, so a stopped service resumes exactly where it left off:

.. code-block:: console

   $ python -m repro.service --port 8327 --fleet-size 2 &
   $ curl -s localhost:8327/tasks -d '{"height":4,"width":4,"exec_seconds":1.0}'
   $ curl -s -X POST localhost:8327/shutdown

Simulated time is decoupled from wall time by default (clients advance
it explicitly); ``--auto-advance R`` attaches a wall-clock ticker that
advances R simulated seconds per wall second for interactive use.

``--replay WORKLOAD`` runs the replay-to-service driver in-process
instead of serving: the seeded workload is pushed through the door,
the service settles, and the summary is printed as JSON — the CI smoke
path and a quick way to compare door behaviour across configs.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
import sys

from . import checkpoint
from .api import ServiceAPI
from .app import ReproService, ServiceConfig
from .qos import QOS_NAMES


def build_parser() -> argparse.ArgumentParser:
    """The service daemon's command line."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Always-on admission service over the scheduling "
                    "stack (REST/JSON, QoS door, checkpoint/restore).",
    )
    net = parser.add_argument_group("network")
    net.add_argument("--host", default="127.0.0.1")
    net.add_argument("--port", type=int, default=8327,
                     help="TCP port (0 picks an ephemeral one)")
    stack = parser.add_argument_group("scheduling stack")
    stack.add_argument("--device", default="XC2S15",
                       help="primary member device name")
    stack.add_argument("--fleet-size", type=int, default=1,
                       help="number of member devices (copies of "
                            "--device unless --fleet-devices names them)")
    stack.add_argument("--fleet-devices", nargs="+", default=[],
                       metavar="NAME",
                       help="extra member device names, appended after "
                            "--device")
    stack.add_argument("--device-policy", default="first-fit",
                       help="fleet device-selection policy")
    stack.add_argument("--queue", default="priority",
                       help="queue discipline (priority honours QoS)")
    stack.add_argument("--ports", default="serial",
                       help="reconfiguration-port model per member")
    stack.add_argument("--rearrange", default="concurrent",
                       help="rearrangement policy (none/halt/concurrent)")
    stack.add_argument("--fit", default="first",
                       help="placement heuristic")
    stack.add_argument("--defrag", default="on-failure",
                       help="defragmentation policy")
    stack.add_argument("--prefetch", default="never",
                       help="configuration-prefetch mode "
                            "(never/cache/plan)")
    door = parser.add_argument_group("admission door")
    door.add_argument("--max-queue-depth", type=int, default=None,
                      help="waiting-queue bound before the door sheds "
                           "load (default: the door's built-in bound)")
    life = parser.add_argument_group("lifecycle")
    life.add_argument("--restore", metavar="PATH",
                      help="boot from a checkpoint file instead of fresh")
    life.add_argument("--checkpoint-on-exit", metavar="PATH",
                      help="write a checkpoint on graceful shutdown")
    life.add_argument("--auto-advance", type=float, default=0.0,
                      metavar="RATE",
                      help="advance RATE simulated seconds per wall "
                           "second (default 0: clients drive the clock)")
    replay = parser.add_argument_group("replay mode (no server)")
    replay.add_argument("--replay", metavar="WORKLOAD",
                        help="replay a seeded workload through the door "
                             "in-process, print the JSON summary, exit")
    replay.add_argument("--replay-tasks", type=int, default=200,
                        help="workload size (the family's size knob)")
    replay.add_argument("--replay-seed", type=int, default=0)
    replay.add_argument("--replay-tenants", nargs="+",
                        default=["default"], metavar="TENANT",
                        help="tenant names, assigned round-robin")
    return parser


def config_from_args(args: argparse.Namespace) -> ServiceConfig:
    """Translate parsed CLI flags into a :class:`ServiceConfig`."""
    extra = {}
    if args.max_queue_depth is not None:
        extra["max_queue_depth"] = args.max_queue_depth
    return ServiceConfig(
        device=args.device,
        fleet_size=args.fleet_size,
        fleet_devices=tuple(args.fleet_devices),
        device_policy=args.device_policy,
        queue=args.queue,
        ports=args.ports,
        rearrange=args.rearrange,
        fit=args.fit,
        defrag=args.defrag,
        prefetch=args.prefetch,
        **extra,
    )


def _build_service(args: argparse.Namespace) -> ReproService:
    """Fresh service from flags, or one restored from --restore."""
    if args.restore:
        return checkpoint.load(args.restore)
    return ReproService(config_from_args(args))


async def _ticker(api: ServiceAPI, rate: float) -> None:
    """Advance simulated time from the wall clock (--auto-advance)."""
    while True:
        await asyncio.sleep(0.1)
        api.service.advance(seconds=0.1 * rate)


async def _serve(args: argparse.Namespace) -> int:
    """Boot, serve until shutdown, optionally checkpoint on the way out."""
    api = ServiceAPI(_build_service(args))
    host, port = await api.start(args.host, args.port)
    print(json.dumps({
        "serving": f"http://{host}:{port}",
        "qos": list(QOS_NAMES),
        "now": api.service.now,
    }), flush=True)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, api.shutdown.set)
    ticker = (asyncio.ensure_future(_ticker(api, args.auto_advance))
              if args.auto_advance > 0 else None)
    await api.shutdown.wait()
    if ticker is not None:
        ticker.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await ticker
    await api.stop()
    if args.checkpoint_on_exit:
        saved = checkpoint.save(api.service, args.checkpoint_on_exit)
        print(json.dumps({"checkpoint": str(saved)}), flush=True)
    return 0


def _replay(args: argparse.Namespace) -> int:
    """Replay mode: drive the door in-process and print the summary."""
    from repro.campaign.replay import replay_workload
    from repro.sched.workload import get_workload

    service = _build_service(args)
    spec_kwargs = {}
    size_param = get_workload(args.replay).size_param
    if size_param:
        spec_kwargs[size_param] = args.replay_tasks
    summary = replay_workload(
        service, args.replay, seed=args.replay_seed,
        tenants=tuple(args.replay_tenants) or ("default",),
        **spec_kwargs,
    )
    print(json.dumps(summary, indent=2), flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: replay mode or serve-until-shutdown."""
    args = build_parser().parse_args(argv)
    if args.replay:
        return _replay(args)
    return asyncio.run(_serve(args))


if __name__ == "__main__":
    sys.exit(main())
