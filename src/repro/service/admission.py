"""The admission door: explicit backpressure instead of unbounded queues.

A long-running service cannot absorb arbitrary arrival rates the way a
batch simulation can — its waiting queue would grow without bound and
every queued request would eventually time out anyway.  The door in
front of the kernel therefore says *no* early and explicitly:

* each ``(tenant, QoS class)`` pair owns a **token bucket** refilled in
  simulated time at the class rate; an empty bucket throttles the
  request with a ``Retry-After`` hint computed from the refill rate
  (HTTP 429 at the API layer);
* a global **queue-depth bound** refuses new work while the kernel's
  waiting queue is already at capacity — the service sheds load at the
  door rather than letting admission latency grow unboundedly.

Both throttles are deterministic functions of the simulated clock, so
service runs (and their checkpoints) replay bit-identically — the same
property every other layer of this repository is pinned on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .qos import QOS_CLASSES, QosClass, get_qos

#: Default bound on the kernel's waiting queue before the door sheds
#: load (tasks, across all tenants).
DEFAULT_MAX_QUEUE_DEPTH = 64

#: Retry hint handed out on queue-depth rejections: roughly one mean
#: service time, after which some queued work has likely drained.
DEPTH_RETRY_AFTER = 1.0


@dataclass(slots=True)
class TokenBucket:
    """A token bucket refilled continuously in simulated time."""

    rate: float
    burst: float
    tokens: float
    updated_at: float = 0.0

    def try_take(self, now: float) -> float:
        """Spend one token at ``now``; 0.0 on success, else the
        simulated seconds until a token will be available."""
        if now > self.updated_at:
            self.tokens = min(
                self.burst, self.tokens + (now - self.updated_at) * self.rate
            )
            self.updated_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate

    def time_to_token(self, now: float) -> float:
        """Simulated seconds until a token would be available at
        ``now`` — a pure projection: nothing is spent, nothing is
        refilled, so probing for a ``Retry-After`` hint never perturbs
        the bucket a later :meth:`try_take` will see."""
        tokens = self.tokens
        if now > self.updated_at:
            tokens = min(
                self.burst, tokens + (now - self.updated_at) * self.rate
            )
        if tokens >= 1.0:
            return 0.0
        return (1.0 - tokens) / self.rate

    def export_state(self) -> dict:
        """Serializable bucket state (checkpoint/restore)."""
        return {"rate": self.rate, "burst": self.burst,
                "tokens": self.tokens, "updated_at": self.updated_at}


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """Outcome of one knock on the door."""

    #: True when the request may proceed to the kernel queue.
    admitted: bool
    #: the QoS class consulted (priority + patience defaults).
    qos: QosClass
    #: simulated seconds the caller should wait before retrying
    #: (the HTTP layer's ``Retry-After``; 0.0 when admitted).
    retry_after: float = 0.0
    #: machine-readable refusal reason (``rate-limit`` / ``queue-full``).
    reason: str = ""


@dataclass
class TenantStats:
    """Per-tenant admission accounting (exposed at ``/stats``)."""

    submitted: int = 0
    admitted: int = 0
    throttled_rate: int = 0
    throttled_depth: int = 0

    def to_dict(self) -> dict:
        """Flat counter dict for the stats endpoint and checkpoints."""
        return {"submitted": self.submitted, "admitted": self.admitted,
                "throttled_rate": self.throttled_rate,
                "throttled_depth": self.throttled_depth}


@dataclass
class AdmissionController:
    """Per-tenant token-bucket rate limits plus a queue-depth bound."""

    max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH
    #: (tenant, class name) -> bucket, created lazily from the class
    #: defaults on first use.
    buckets: dict[tuple[str, str], TokenBucket] = field(
        default_factory=dict
    )
    stats: dict[str, TenantStats] = field(default_factory=dict)

    def _bucket(self, tenant: str, qos: QosClass) -> TokenBucket:
        """The tenant's bucket for a class (lazily provisioned)."""
        key = (tenant, qos.name)
        bucket = self.buckets.get(key)
        if bucket is None:
            bucket = TokenBucket(qos.rate, qos.burst, tokens=qos.burst)
            self.buckets[key] = bucket
        return bucket

    def _stats(self, tenant: str) -> TenantStats:
        """The tenant's counter record (lazily provisioned)."""
        stats = self.stats.get(tenant)
        if stats is None:
            stats = TenantStats()
            self.stats[tenant] = stats
        return stats

    def admit(self, tenant: str, qos_name: str, now: float,
              queue_depth: int) -> AdmissionDecision:
        """Decide one submission at simulated instant ``now``.

        ``queue_depth`` is the kernel's current waiting count; the
        depth bound is checked first (shedding load beats metering it),
        then the tenant's token bucket for the class.  Every decision
        is counted in :attr:`stats`.
        """
        qos = get_qos(qos_name)
        stats = self._stats(tenant)
        stats.submitted += 1
        if queue_depth >= self.max_queue_depth:
            stats.throttled_depth += 1
            # A queue-full refusal still owes an honest hint: a tenant
            # whose bucket is also drained cannot usefully retry before
            # its own refill deficit clears, while a nearly-refilled
            # tenant should not be told to wait the full constant.
            deficit = self._bucket(tenant, qos).time_to_token(now)
            retry_after = deficit if deficit > 0.0 else DEPTH_RETRY_AFTER
            return AdmissionDecision(False, qos,
                                     retry_after=retry_after,
                                     reason="queue-full")
        retry_after = self._bucket(tenant, qos).try_take(now)
        if retry_after > 0.0:
            stats.throttled_rate += 1
            return AdmissionDecision(False, qos, retry_after=retry_after,
                                     reason="rate-limit")
        stats.admitted += 1
        return AdmissionDecision(True, qos)

    # -- checkpoint support --------------------------------------------------

    def export_state(self) -> dict:
        """Serializable controller state (buckets + counters)."""
        return {
            "max_queue_depth": self.max_queue_depth,
            "buckets": [
                {"tenant": tenant, "qos": qos, **bucket.export_state()}
                for (tenant, qos), bucket in sorted(self.buckets.items())
            ],
            "stats": {tenant: stats.to_dict()
                      for tenant, stats in sorted(self.stats.items())},
        }

    @classmethod
    def from_state(cls, state: dict) -> "AdmissionController":
        """Rebuild a controller from :meth:`export_state` output."""
        controller = cls(max_queue_depth=int(state["max_queue_depth"]))
        for row in state.get("buckets", []):
            controller.buckets[(row["tenant"], row["qos"])] = TokenBucket(
                rate=float(row["rate"]), burst=float(row["burst"]),
                tokens=float(row["tokens"]),
                updated_at=float(row["updated_at"]),
            )
        for tenant, counters in state.get("stats", {}).items():
            controller.stats[tenant] = TenantStats(**counters)
        return controller


def class_names() -> tuple[str, ...]:
    """The QoS classes the door understands (re-exported for the API)."""
    return tuple(QOS_CLASSES)
