"""The always-on admission service over the scheduling stack.

The batch campaigns answer *"what would this policy have done to this
trace?"*; :mod:`repro.service` answers the paper's actual operating
question — a run-time manager that is simply **on**, admitting,
refusing and cancelling work while the system runs.  The package wraps
a :class:`~repro.fleet.manager.FleetManager` +
:class:`~repro.sched.kernel.SchedulingKernel` stack behind a small
asyncio REST/JSON API with a QoS-aware admission door, explicit
backpressure and JSON checkpoint/restore.

Layers (each its own module):

* :mod:`~repro.service.qos` — the gold/silver/best-effort class
  registry mapped onto the priority queue discipline;
* :mod:`~repro.service.admission` — per-tenant token buckets and the
  queue-depth bound (the 429 + Retry-After door);
* :mod:`~repro.service.app` — :class:`ServiceEngine` (incremental
  scheduler with a journal) and :class:`ReproService` (door + engine);
* :mod:`~repro.service.checkpoint` — freeze/thaw to JSON with a
  bit-identical-continuation guarantee;
* :mod:`~repro.service.api` — the asyncio HTTP layer (NDJSON
  telemetry streaming included);
* ``python -m repro.service`` — the runnable daemon
  (:mod:`~repro.service.__main__`).

Everything is stdlib-only and driven by *simulated* time, so a live
service run is exactly as deterministic as a batch campaign — the
property the checkpoint round-trip tests pin.
"""

from .admission import AdmissionController, AdmissionDecision, TokenBucket
from .api import ServiceAPI
from .app import ReproService, ServiceConfig, ServiceEngine
from .checkpoint import load, restore, save, snapshot
from .qos import QOS_CLASSES, QOS_NAMES, QosClass, get_qos, qos_for_priority

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "QOS_CLASSES",
    "QOS_NAMES",
    "QosClass",
    "ReproService",
    "ServiceAPI",
    "ServiceConfig",
    "ServiceEngine",
    "TokenBucket",
    "get_qos",
    "load",
    "qos_for_priority",
    "restore",
    "save",
    "snapshot",
]
