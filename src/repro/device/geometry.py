"""Geometric primitives for the FPGA logic space.

The paper models the FPGA as a rectangular array of uncommitted CLBs
(Configurable Logic Blocks) surrounded by IOBs, interconnected by
configurable routing resources (Gericota et al., DATE 2003, section 2).
This module provides the coordinate types used everywhere else:

* :class:`ClbCoord` — a CLB site addressed by (row, col).
* :class:`CellCoord` — one of the four logic cells inside a CLB
  ("each CLB comprises four of these cells", section 2).
* :class:`Rect` — a rectangular region of CLBs, used for function
  footprints and free-space bookkeeping.

Rows run top-to-bottom, columns left-to-right, both 0-based, matching the
frame orientation of the Virtex configuration memory (frames are vertical,
one CLB column wide).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: Number of slices in a Virtex CLB.
SLICES_PER_CLB = 2
#: Number of logic cells (LUT + FF pairs) in a Virtex CLB.
CELLS_PER_CLB = 4
#: Number of logic cells in each slice.
CELLS_PER_SLICE = CELLS_PER_CLB // SLICES_PER_CLB


@dataclass(frozen=True, order=True, slots=True)
class ClbCoord:
    """Coordinate of a CLB site in the array (0-based row and column)."""

    row: int
    col: int

    def neighbours(self) -> tuple["ClbCoord", ...]:
        """Return the 4-neighbourhood of this site (may include
        out-of-array coordinates; callers clip against the device)."""
        return (
            ClbCoord(self.row - 1, self.col),
            ClbCoord(self.row + 1, self.col),
            ClbCoord(self.row, self.col - 1),
            ClbCoord(self.row, self.col + 1),
        )

    def manhattan(self, other: "ClbCoord") -> int:
        """Manhattan distance to ``other`` in CLB units."""
        return abs(self.row - other.row) + abs(self.col - other.col)

    def __str__(self) -> str:  # e.g. R3C17
        return f"R{self.row}C{self.col}"


@dataclass(frozen=True, order=True, slots=True)
class CellCoord:
    """Coordinate of a single logic cell: a CLB site plus cell index 0-3.

    Cells 0 and 1 live in slice 0, cells 2 and 3 in slice 1.  The paper's
    relocation procedure operates on individual cells ("each CLB cell can
    be considered individually", section 2).
    """

    row: int
    col: int
    cell: int

    def __post_init__(self) -> None:
        if not 0 <= self.cell < CELLS_PER_CLB:
            raise ValueError(f"cell index {self.cell} outside 0..{CELLS_PER_CLB - 1}")

    @property
    def clb(self) -> ClbCoord:
        """The CLB site containing this cell."""
        return ClbCoord(self.row, self.col)

    @property
    def slice_index(self) -> int:
        """Slice (0 or 1) containing this cell."""
        return self.cell // CELLS_PER_SLICE

    def __str__(self) -> str:  # e.g. R3C17.2
        return f"R{self.row}C{self.col}.{self.cell}"


@dataclass(frozen=True, order=True, slots=True)
class Rect:
    """A rectangle of CLBs: origin (row, col), extent (height, width).

    Rectangles are half-open neither-way: they cover rows
    ``row .. row + height - 1`` and columns ``col .. col + width - 1``.
    """

    row: int
    col: int
    height: int
    width: int

    def __post_init__(self) -> None:
        if self.height <= 0 or self.width <= 0:
            raise ValueError(f"degenerate rectangle {self!r}")

    @property
    def area(self) -> int:
        """Number of CLB sites covered."""
        return self.height * self.width

    @property
    def row_end(self) -> int:
        """One past the last covered row."""
        return self.row + self.height

    @property
    def col_end(self) -> int:
        """One past the last covered column."""
        return self.col + self.width

    def contains(self, coord: ClbCoord) -> bool:
        """True if ``coord`` lies inside this rectangle."""
        return (
            self.row <= coord.row < self.row_end
            and self.col <= coord.col < self.col_end
        )

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside this rectangle."""
        return (
            self.row <= other.row
            and self.col <= other.col
            and other.row_end <= self.row_end
            and other.col_end <= self.col_end
        )

    def overlaps(self, other: "Rect") -> bool:
        """True if the two rectangles share at least one CLB site."""
        return (
            self.row < other.row_end
            and other.row < self.row_end
            and self.col < other.col_end
            and other.col < self.col_end
        )

    def sites(self) -> Iterator[ClbCoord]:
        """Iterate over every CLB site covered, row-major order."""
        for r in range(self.row, self.row_end):
            for c in range(self.col, self.col_end):
                yield ClbCoord(r, c)

    def columns(self) -> range:
        """The CLB columns spanned (useful for frame accounting: any
        reconfiguration of this region touches exactly these columns)."""
        return range(self.col, self.col_end)

    def translated(self, drow: int, dcol: int) -> "Rect":
        """A copy of this rectangle moved by (drow, dcol)."""
        return Rect(self.row + drow, self.col + dcol, self.height, self.width)

    def center(self) -> ClbCoord:
        """The CLB site nearest the rectangle's centroid."""
        return ClbCoord(self.row + self.height // 2, self.col + self.width // 2)

    def __str__(self) -> str:  # e.g. 4x6@R2C10
        return f"{self.height}x{self.width}@R{self.row}C{self.col}"


def span_columns(*rects: Rect) -> range:
    """Smallest contiguous range of CLB columns covering all ``rects``.

    The relocation of a CLB affects every configuration column its signals
    cross ("more than one column may be affected, since its input and
    output signals ... may cross several columns", section 2); this helper
    computes that span.
    """
    if not rects:
        raise ValueError("span_columns() needs at least one rectangle")
    lo = min(r.col for r in rects)
    hi = max(r.col_end for r in rects)
    return range(lo, hi)
