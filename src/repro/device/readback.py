"""Configuration readback and flip-flop state capture.

Section 2 of the paper notes that each CLB configuration column mixes
"internal CLB configuration and state information": the Virtex readback
path can capture the current flip-flop states into the configuration
memory's state frames (the GCAPTURE mechanism) and read them out.  The
paper's *concurrent* procedure deliberately avoids relying on capture —
a captured snapshot goes stale if CE fires between capture and rewrite —
but the *halting* baseline uses exactly this path, and the tool reads
back columns to build its recovery copy.

This module models both:

* :class:`StateCapture` — maps each logic cell site to a (frame, bit)
  position inside its column's state frames, captures a simulator's
  flip-flop states into the configuration memory, and restores them;
* :func:`capture_hazard_window` — the coherency analysis: the number of
  enabled clock edges between capture and rewrite is exactly the number
  of lost updates (why capture-based transfer needs the system halted).
"""

from __future__ import annotations

from dataclasses import dataclass

from .config_memory import ColumnKind, ConfigMemory, FrameAddress, STATE_MINORS
from .geometry import CELLS_PER_CLB, CellCoord


@dataclass(frozen=True)
class StateBitLocation:
    """Where one cell's FF state lives in the configuration memory."""

    address: FrameAddress
    bit: int


class StateCapture:
    """Capture/restore of flip-flop state through the state frames."""

    def __init__(self, memory: ConfigMemory) -> None:
        self.memory = memory
        self.captures = 0

    def location(self, site: CellCoord) -> StateBitLocation:
        """The state-frame bit holding ``site``'s flip-flop state.

        Layout: state frames of the cell's column; one bit per cell,
        packed row-major (row * cells-per-CLB + cell index), spilling
        across the column's state minors.
        """
        if not 0 <= site.col < self.memory.device.clb_cols:
            raise IndexError(f"site {site} outside device")
        if not 0 <= site.row < self.memory.device.clb_rows:
            raise IndexError(f"site {site} outside device")
        index = site.row * CELLS_PER_CLB + site.cell
        bits_per_frame = self.memory.device.frame_bits
        minor_offset, bit = divmod(index, bits_per_frame)
        minors = list(STATE_MINORS)
        if minor_offset >= len(minors):
            raise IndexError(f"state bit of {site} exceeds state frames")
        address = FrameAddress(
            ColumnKind.CLB,
            self.memory.clb_major(site.col),
            minors[minor_offset],
        )
        return StateBitLocation(address, bit)

    def capture(self, states: dict[CellCoord, int]) -> int:
        """Snapshot flip-flop states into the state frames (GCAPTURE).

        ``states`` maps sites to current FF values (from the simulator —
        the model's stand-in for the capture trigger).  Returns the
        number of frames written.
        """
        by_frame: dict[FrameAddress, list[tuple[int, int]]] = {}
        for site, value in states.items():
            loc = self.location(site)
            by_frame.setdefault(loc.address, []).append((loc.bit, value & 1))
        writes = []
        for address, bits in by_frame.items():
            frame = bytearray(self.memory.peek_frame(address))
            for bit, value in bits:
                byte, offset = divmod(bit, 8)
                if value:
                    frame[byte] |= 1 << offset
                else:
                    frame[byte] &= ~(1 << offset)
            writes.append((address, bytes(frame)))
        self.memory.write_frames(writes)
        self.captures += 1
        return len(writes)

    def read_state(self, site: CellCoord) -> int:
        """Read one captured flip-flop state back out."""
        loc = self.location(site)
        frame = self.memory.peek_frame(loc.address)
        byte, offset = divmod(loc.bit, 8)
        return (frame[byte] >> offset) & 1

    def read_states(self, sites: list[CellCoord]) -> dict[CellCoord, int]:
        """Read several captured states (one readback transaction each
        distinct frame)."""
        return {site: self.read_state(site) for site in sites}


def capture_hazard_window(enabled_edges_between: int) -> int:
    """Updates lost by capture-based state transfer on a *running* system.

    If the flip-flop's clock enable fires ``enabled_edges_between`` times
    between the capture and the moment the captured value is written
    into the replica, the replica is exactly that many updates behind.
    Zero only when the system is halted — the paper's reason for
    rejecting capture-based transfer for concurrent relocation.
    """
    if enabled_edges_between < 0:
        raise ValueError("edge count cannot be negative")
    return enabled_edges_between
