"""Configuration model of a Virtex CLB and its four logic cells.

Each Virtex CLB holds two slices of two logic cells each; every cell is a
4-input LUT feeding an optional storage element that can act as an
edge-triggered flip-flop or a transparent latch, with a clock-enable (CE)
input (paper, section 2).  LUTs can also be configured as distributed RAM
— which the paper explicitly excludes from relocation:

    "it is not feasible to extend this on-line relocation concept to the
    relocation of those LUT/RAMs ... Even not being relocated, LUT/RAMs
    should not lie in any column that could be affected by the relocation
    procedure."

The :class:`CellMode` taxonomy mirrors the paper's three implementation
cases: combinational, synchronous free-running clock, synchronous
gated-clock, and asynchronous (latch-based).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from .geometry import CELLS_PER_CLB

#: Number of configuration bits in a 4-input LUT.
LUT_BITS = 16


class CellMode(Enum):
    """How a logic cell's storage element is used — the paper's taxonomy.

    The relocation procedure differs per mode: combinational cells need
    only the two-phase copy; free-running-clock FFs acquire state while
    the inputs are paralleled; gated-clock FFs need the auxiliary
    relocation circuit; latches use the same circuit with the latch gate
    standing in for CE.
    """

    COMBINATIONAL = "combinational"
    FF_FREE_CLOCK = "ff-free-clock"
    FF_GATED_CLOCK = "ff-gated-clock"
    LATCH = "latch"
    LUT_RAM = "lut-ram"

    @property
    def sequential(self) -> bool:
        """True when the cell holds state that relocation must preserve."""
        return self in (
            CellMode.FF_FREE_CLOCK,
            CellMode.FF_GATED_CLOCK,
            CellMode.LATCH,
        )

    @property
    def relocatable(self) -> bool:
        """LUT/RAM cells cannot be relocated on-line (paper, section 2)."""
        return self is not CellMode.LUT_RAM


@dataclass(frozen=True)
class LogicCellConfig:
    """Static configuration of one logic cell.

    ``lut`` is the 16-entry truth table packed LSB-first: bit ``i`` is the
    output for input vector ``i`` (input 0 is the LSB of the address).
    """

    mode: CellMode = CellMode.COMBINATIONAL
    lut: int = 0
    used: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.lut < (1 << LUT_BITS):
            raise ValueError(f"LUT truth table {self.lut:#x} exceeds 16 bits")

    def lut_output(self, inputs: tuple[int, ...]) -> int:
        """Evaluate the LUT for a 4-bit input vector (missing inputs 0)."""
        address = 0
        for i, bit in enumerate(inputs[:4]):
            address |= (bit & 1) << i
        return (self.lut >> address) & 1

    def vacated(self) -> "LogicCellConfig":
        """The configuration after the cell returns to the free pool."""
        return LogicCellConfig()


@dataclass
class ClbConfig:
    """Configuration of one CLB site: four logic cells.

    Mutable: relocation copies cell configurations between sites, and the
    resource manager vacates whole CLBs when a function is swapped out.
    """

    cells: list[LogicCellConfig] = field(
        default_factory=lambda: [LogicCellConfig() for _ in range(CELLS_PER_CLB)]
    )

    def __post_init__(self) -> None:
        if len(self.cells) != CELLS_PER_CLB:
            raise ValueError(f"a CLB has exactly {CELLS_PER_CLB} cells")

    @property
    def used_cells(self) -> int:
        """Number of occupied logic cells."""
        return sum(1 for c in self.cells if c.used)

    @property
    def is_free(self) -> bool:
        """True when no cell of this CLB is in use."""
        return self.used_cells == 0

    @property
    def has_lut_ram(self) -> bool:
        """True when any cell is configured as distributed RAM."""
        return any(c.mode is CellMode.LUT_RAM for c in self.cells)

    def free_cell_indices(self) -> list[int]:
        """Indices of unoccupied cells (candidates for the auxiliary
        relocation circuit, which "must be implemented during the
        relocation process in a nearby (free) CLB")."""
        return [i for i, c in enumerate(self.cells) if not c.used]

    def place_cell(self, index: int, config: LogicCellConfig) -> None:
        """Occupy cell ``index`` with ``config`` (marked used)."""
        if self.cells[index].used:
            raise ValueError(f"cell {index} already occupied")
        self.cells[index] = replace(config, used=True)

    def vacate_cell(self, index: int) -> None:
        """Return cell ``index`` to the free pool."""
        self.cells[index] = self.cells[index].vacated()
