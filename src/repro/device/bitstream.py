"""Partial-bitstream packet model and configuration controller.

The paper's tool "is responsible by the creation of the partial
configuration files and carries out the partial and dynamic
reconfiguration of the FPGA through the Boundary Scan interface"
(section 4).  This module supplies both halves against the simulated
device:

* :class:`PartialBitstream` — a Virtex-style packet stream (sync word,
  ``CMD WCFG``, ``FAR``, ``FDRI`` bursts including the mandatory pad
  frame, trailing CRC and ``DESYNC``) whose exact 32-bit word count feeds
  the Boundary-Scan timing model.
* :class:`ConfigurationController` — the device-side packet processor
  that applies a stream to a :class:`~repro.device.config_memory.ConfigMemory`,
  mimicking the auto-incrementing frame address behaviour of the silicon.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from .config_memory import ColumnKind, ConfigMemory, FrameAddress


def _payload_bytes(payload: list[int]) -> bytes:
    """The big-endian wire bytes of a packet payload, in one shot."""
    if not payload:
        return b""
    return np.asarray(payload, dtype=">u4").tobytes()

#: Virtex synchronisation word.
SYNC_WORD = 0xAA995566

#: Configuration register addresses (subset used by partial flows).
REGISTERS = {
    "CRC": 0,
    "FAR": 1,
    "FDRI": 2,
    "FDRO": 3,
    "CMD": 4,
    "CTL": 5,
    "MASK": 6,
    "STAT": 7,
    "COR": 9,
    "FLR": 11,
}

#: CMD register command codes (subset).
COMMANDS = {
    "NULL": 0,
    "WCFG": 1,
    "LFRM": 3,
    "RCFG": 4,
    "START": 5,
    "RCRC": 7,
    "AGHIGH": 8,
    "DESYNC": 13,
}

#: Encoding of column kinds into FAR block-type / column-offset space.
_KIND_CODES = {
    ColumnKind.CLOCK: 0,
    ColumnKind.CLB: 1,
    ColumnKind.IOB: 2,
    ColumnKind.BRAM_INTERCONNECT: 3,
    ColumnKind.BRAM_CONTENT: 4,
}
_CODE_KINDS = {v: k for k, v in _KIND_CODES.items()}


def encode_far(addr: FrameAddress) -> int:
    """Pack a frame address into a 32-bit FAR word."""
    return (
        (_KIND_CODES[addr.kind] << 25)
        | ((addr.major & 0xFF) << 9)
        | (addr.minor & 0x1FF)
    )


def decode_far(word: int) -> FrameAddress:
    """Unpack a 32-bit FAR word into a frame address."""
    kind = _CODE_KINDS[(word >> 25) & 0x7]
    return FrameAddress(kind, (word >> 9) & 0xFF, word & 0x1FF)


class PacketOp(Enum):
    """Packet operations (type-1 header opcodes)."""

    NOP = "nop"
    WRITE = "write"
    READ = "read"


@dataclass
class Packet:
    """One configuration packet: header word + payload words."""

    op: PacketOp
    register: str
    payload: list[int] = field(default_factory=list)

    @property
    def word_count(self) -> int:
        """Total 32-bit words on the wire (1 header + payload)."""
        return 1 + len(self.payload)

    def __str__(self) -> str:
        return f"{self.op.value} {self.register}[{len(self.payload)}]"


@dataclass
class FrameWrite:
    """A planned frame write: address plus payload bytes."""

    addr: FrameAddress
    data: bytes


class PartialBitstream:
    """A partial configuration file: an ordered packet stream.

    Build with :meth:`add_column_write` / :meth:`add_frame_writes`, then
    :meth:`finalize`.  ``word_count`` is what the Boundary-Scan port
    shifts.  Every FDRI burst carries one extra *pad frame*, as the Virtex
    configuration logic requires; this is part of why relocation over a
    serial port costs milliseconds.
    """

    def __init__(self, memory: ConfigMemory, label: str = "") -> None:
        self.memory = memory
        self.label = label
        self.packets: list[Packet] = [
            Packet(PacketOp.WRITE, "CMD", [COMMANDS["RCRC"]]),
        ]
        self._finalized = False

    @property
    def frame_words(self) -> int:
        """Words per frame for the target device."""
        return self.memory.device.frame_words

    def _require_open(self) -> None:
        if self._finalized:
            raise RuntimeError("bitstream already finalized")

    def add_frame_writes(self, writes: list[FrameWrite]) -> None:
        """Append FAR+FDRI bursts covering ``writes``.

        Consecutive writes to the same column with consecutive minors are
        merged into one burst, exactly as the tool groups them into a
        single partial configuration sequence.
        """
        self._require_open()
        if not writes:
            return
        i = 0
        while i < len(writes):
            j = i + 1
            while (
                j < len(writes)
                and writes[j].addr.kind is writes[i].addr.kind
                and writes[j].addr.major == writes[i].addr.major
                and writes[j].addr.minor == writes[j - 1].addr.minor + 1
            ):
                j += 1
            burst = writes[i:j]
            for w in burst:
                if len(w.data) != self.memory.frame_bytes:
                    raise ValueError(
                        f"frame payload for {w.addr} must be "
                        f"{self.memory.frame_bytes} bytes"
                    )
            # Decode the burst's bytes into words in one vectorised pass;
            # one pad frame of zeros flushes the frame data register.
            payload: list[int] = np.frombuffer(
                b"".join(w.data for w in burst), dtype=">u4"
            ).tolist()
            payload.extend([0] * self.frame_words)
            self.packets.append(
                Packet(PacketOp.WRITE, "CMD", [COMMANDS["WCFG"]])
            )
            self.packets.append(
                Packet(PacketOp.WRITE, "FAR", [encode_far(burst[0].addr)])
            )
            self.packets.append(Packet(PacketOp.WRITE, "FDRI", payload))
            i = j

    def add_column_write(self, kind: ColumnKind, major: int,
                         frames: list[bytes]) -> None:
        """Append a whole-column rewrite (the Boundary-Scan flow's write
        granularity; see DESIGN.md section 5)."""
        self.add_frame_writes(
            [
                FrameWrite(FrameAddress(kind, major, minor), data)
                for minor, data in enumerate(frames)
            ]
        )

    def finalize(self) -> "PartialBitstream":
        """Append the CRC/DESYNC trailer and freeze the stream."""
        self._require_open()
        self.packets.append(Packet(PacketOp.WRITE, "CRC", [self.crc()]))
        self.packets.append(
            Packet(PacketOp.WRITE, "CMD", [COMMANDS["DESYNC"]])
        )
        self.packets.append(Packet(PacketOp.NOP, "CRC", []))
        self._finalized = True
        return self

    def crc(self) -> int:
        """CRC over all payload words appended so far (zlib.crc32 stands in
        for the silicon's 16-bit register CRC; only consistency matters).

        Computed over the concatenated wire bytes in one call —
        ``zlib.crc32`` streams, so this equals the word-by-word chain.
        """
        return zlib.crc32(
            b"".join(_payload_bytes(pkt.payload) for pkt in self.packets)
        ) & 0xFFFFFFFF

    @property
    def word_count(self) -> int:
        """Total 32-bit words on the wire, including the sync word."""
        return 1 + sum(p.word_count for p in self.packets)

    @property
    def bit_count(self) -> int:
        """Total bits on the wire."""
        return 32 * self.word_count

    def describe(self) -> str:
        """One-line summary used in traces and the tool's logs."""
        fdri_words = sum(
            len(p.payload) for p in self.packets if p.register == "FDRI"
        )
        return (
            f"<partial {self.label or 'config'}: {self.word_count} words, "
            f"{fdri_words} FDRI words, {len(self.packets)} packets>"
        )


class ConfigurationController:
    """Device-side packet processor.

    Applies a :class:`PartialBitstream` to the configuration memory,
    reproducing the silicon behaviour that matters to the paper: frames
    are written through an auto-incrementing address, a whole burst forms
    one transaction, and a CRC mismatch aborts the load (the tool then
    restores its recovery copy).
    """

    def __init__(self, memory: ConfigMemory) -> None:
        self.memory = memory
        self.loads = 0

    def apply(self, bitstream: PartialBitstream, check_crc: bool = True) -> None:
        """Process every packet of ``bitstream`` in order."""
        if not bitstream._finalized:
            raise RuntimeError("apply() requires a finalized bitstream")
        if bitstream.memory.device.name != self.memory.device.name:
            raise ValueError(
                "bitstream targets device "
                f"{bitstream.memory.device.name}, controller drives "
                f"{self.memory.device.name}"
            )
        if check_crc:
            expected = None
            parts: list[bytes] = []
            for pkt in bitstream.packets:
                if pkt.register == "CRC" and pkt.op is PacketOp.WRITE:
                    expected = pkt.payload[0]
                    break
                parts.append(_payload_bytes(pkt.payload))
            check = zlib.crc32(b"".join(parts))
            if expected is not None and check & 0xFFFFFFFF != expected:
                raise ValueError("configuration CRC mismatch; load aborted")
        far: FrameAddress | None = None
        fb = self.memory.frame_bytes
        fw = self.memory.device.frame_words
        for pkt in bitstream.packets:
            if pkt.op is not PacketOp.WRITE:
                continue
            if pkt.register == "FAR":
                far = decode_far(pkt.payload[0])
            elif pkt.register == "FDRI":
                if far is None:
                    raise ValueError("FDRI packet before any FAR packet")
                payload = _payload_bytes(pkt.payload)
                # Strip the trailing pad frame.
                payload = payload[: len(payload) - fw * 4]
                if len(payload) % fb:
                    raise ValueError("FDRI payload is not a whole number of frames")
                writes: list[tuple[FrameAddress, bytes]] = []
                addr = far
                for k in range(0, len(payload), fb):
                    writes.append((addr, payload[k : k + fb]))
                    addr = FrameAddress(addr.kind, addr.major, addr.minor + 1)
                # One FDRI burst is one write transaction on the device.
                self.memory.write_frames(writes)
                far = None
        self.loads += 1
