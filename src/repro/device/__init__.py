"""Behavioural model of the Virtex-class reconfigurable device.

This subpackage is the hardware substrate of the reproduction: CLB array
geometry, configuration memory (frames/columns), partial bitstreams, the
Boundary-Scan configuration port, and the routing fabric.  See DESIGN.md
section 3 for the inventory.
"""

from .clb import CellMode, ClbConfig, LogicCellConfig
from .config_memory import (
    ColumnKind,
    ConfigMemory,
    FrameAddress,
    LOGIC_MINORS,
    ROUTING_MINORS,
    STATE_MINORS,
    WriteStats,
)
from .bitstream import (
    ConfigurationController,
    FrameWrite,
    Packet,
    PacketOp,
    PartialBitstream,
    decode_far,
    encode_far,
)
from .devices import (
    DEVICE_TABLE,
    VirtexDevice,
    XCV200,
    device,
    synthetic_device,
)
from .fabric import FREE, Fabric, FabricError
from .geometry import (
    CELLS_PER_CLB,
    CellCoord,
    ClbCoord,
    Rect,
    SLICES_PER_CLB,
    span_columns,
)
from .jtag import BoundaryScanPort, SelectMapPort, TapController, TapState
from .readback import StateBitLocation, StateCapture, capture_hazard_window
from .routing import (
    RoutePath,
    RoutingError,
    RoutingGraph,
    Segment,
    WireKind,
    path_channels,
)

__all__ = [
    "BoundaryScanPort",
    "CELLS_PER_CLB",
    "CellCoord",
    "CellMode",
    "ClbConfig",
    "ClbCoord",
    "ColumnKind",
    "ConfigMemory",
    "ConfigurationController",
    "DEVICE_TABLE",
    "FREE",
    "Fabric",
    "FabricError",
    "FrameAddress",
    "FrameWrite",
    "LOGIC_MINORS",
    "LogicCellConfig",
    "Packet",
    "PacketOp",
    "PartialBitstream",
    "ROUTING_MINORS",
    "Rect",
    "RoutePath",
    "RoutingError",
    "RoutingGraph",
    "STATE_MINORS",
    "SLICES_PER_CLB",
    "Segment",
    "SelectMapPort",
    "StateBitLocation",
    "StateCapture",
    "TapController",
    "TapState",
    "VirtexDevice",
    "WireKind",
    "WriteStats",
    "XCV200",
    "capture_hazard_window",
    "decode_far",
    "device",
    "encode_far",
    "path_channels",
    "span_columns",
    "synthetic_device",
]
