"""Device table for the Virtex and Spartan-II families.

The paper validates dynamic relocation on a Xilinx Virtex XCV200 and notes
that the Virtex and Spartan families are the targets of the work
(section 1).  This module captures the architectural parameters that the
relocation procedure and its cost model depend on:

* the CLB array dimensions (rows x columns),
* the configuration-memory geometry: number of frames per column kind and
  the frame length in bits (XAPP151, "Virtex Series Configuration
  Architecture User Guide"),
* the number of block-RAM columns.

Frame lengths are stored per device (XAPP151 table values); for synthetic
devices a fallback formula pads ``18 * rows + 36`` up to a 32-bit multiple.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Frames in one CLB configuration column (XAPP151).
FRAMES_PER_CLB_COLUMN = 48
#: Frames in the centre clock column.
FRAMES_PER_CLOCK_COLUMN = 8
#: Frames in each IOB configuration column (two per device: left, right).
FRAMES_PER_IOB_COLUMN = 54
#: Frames in each block-RAM interconnect column.
FRAMES_PER_BRAM_INTERCONNECT_COLUMN = 27
#: Frames in each block-RAM content column.
FRAMES_PER_BRAM_CONTENT_COLUMN = 64


def fallback_frame_bits(clb_rows: int) -> int:
    """Approximate frame length for a device with ``clb_rows`` CLB rows.

    Each CLB row contributes 18 bits to a frame, plus top/bottom IOB and
    pad overhead; the result is padded to a 32-bit word boundary.  This
    matches the XAPP151 values to within one word and is used only for
    synthetic devices absent from :data:`DEVICE_TABLE`.
    """
    raw = 18 * clb_rows + 36
    return ((raw + 31) // 32) * 32


@dataclass(frozen=True)
class VirtexDevice:
    """Architectural description of one Virtex/Spartan-II device."""

    name: str
    clb_rows: int
    clb_cols: int
    frame_bits: int
    bram_cols: int = 2
    family: str = "virtex"

    @property
    def clb_count(self) -> int:
        """Total number of CLB sites."""
        return self.clb_rows * self.clb_cols

    @property
    def logic_cell_count(self) -> int:
        """Total number of logic cells (4 per CLB)."""
        return 4 * self.clb_count

    @property
    def frame_words(self) -> int:
        """Frame length in 32-bit configuration words."""
        return self.frame_bits // 32

    @property
    def total_frames(self) -> int:
        """Total number of configuration frames in the device."""
        return (
            FRAMES_PER_CLOCK_COLUMN
            + self.clb_cols * FRAMES_PER_CLB_COLUMN
            + 2 * FRAMES_PER_IOB_COLUMN
            + self.bram_cols
            * (FRAMES_PER_BRAM_INTERCONNECT_COLUMN + FRAMES_PER_BRAM_CONTENT_COLUMN)
        )

    @property
    def configuration_bits(self) -> int:
        """Total size of the configuration memory in bits."""
        return self.total_frames * self.frame_bits

    def __str__(self) -> str:
        return f"{self.name} ({self.clb_rows}x{self.clb_cols} CLBs)"


def _dev(name: str, rows: int, cols: int, frame_bits: int, **kw) -> VirtexDevice:
    return VirtexDevice(name, rows, cols, frame_bits, **kw)


#: Known devices.  CLB array sizes and frame lengths follow the Virtex
#: data sheet and XAPP151; Spartan-II mirrors Virtex at smaller sizes.
DEVICE_TABLE: dict[str, VirtexDevice] = {
    d.name: d
    for d in (
        _dev("XCV50", 16, 24, 384),
        _dev("XCV100", 20, 30, 448),
        _dev("XCV150", 24, 36, 512),
        _dev("XCV200", 28, 42, 576),
        _dev("XCV300", 32, 48, 672),
        _dev("XCV400", 40, 60, 800),
        _dev("XCV600", 48, 72, 960),
        _dev("XCV800", 56, 84, 1088),
        _dev("XCV1000", 64, 96, 1248),
        _dev("XC2S15", 8, 12, 224, family="spartan2"),
        _dev("XC2S30", 12, 18, 288, family="spartan2"),
        _dev("XC2S50", 16, 24, 384, family="spartan2"),
        _dev("XC2S100", 20, 30, 448, family="spartan2"),
        _dev("XC2S150", 24, 36, 512, family="spartan2"),
        _dev("XC2S200", 28, 42, 576, family="spartan2"),
    )
}


def device(name: str) -> VirtexDevice:
    """Look up a device by name (case-insensitive).

    Raises ``KeyError`` with the list of known devices when unknown.
    """
    key = name.upper()
    if key not in DEVICE_TABLE:
        known = ", ".join(sorted(DEVICE_TABLE))
        raise KeyError(f"unknown device {name!r}; known devices: {known}")
    return DEVICE_TABLE[key]


def synthetic_device(rows: int, cols: int, name: str | None = None) -> VirtexDevice:
    """Build an ad-hoc device, e.g. for tests needing tiny arrays."""
    if rows <= 0 or cols <= 0:
        raise ValueError("device must have positive CLB array dimensions")
    return VirtexDevice(
        name or f"SYN{rows}X{cols}",
        rows,
        cols,
        fallback_frame_bits(rows),
        bram_cols=0,
        family="synthetic",
    )


#: The device used throughout the paper's experiments.
XCV200 = DEVICE_TABLE["XCV200"]
