"""Behavioural model of the Virtex configuration memory.

Section 2 of the paper describes the organisation this module reproduces:

    "The configuration memory can be visualised as a rectangular array of
    bits, which are grouped into one-bit wide vertical frames extending
    from the top to the bottom of the array.  A frame is the smallest unit
    of configuration that can be written to or read from the configuration
    memory.  Frames are grouped together into larger units called columns.
    Each CLB column corresponds to a configuration column with multiple
    frames, mixing internal CLB configuration and state information, and
    column routing and interconnect information."

The model stores every frame as a byte buffer, addressed by
(:class:`ColumnKind`, major, minor) in the style of the Virtex frame
address register (FAR).  It keeps write statistics that the reconfiguration
cost model (``repro.core.cost``) converts into Boundary-Scan shift time.

Within a CLB column the 48 frames mix routing and logic configuration; we
adopt the documented approximation (see DESIGN.md section 5):

* minors 0..23  — routing / interconnect configuration,
* minors 24..41 — CLB internal (LUT/FF mode) configuration,
* minors 42..47 — state capture and miscellaneous control.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

from .devices import (
    FRAMES_PER_BRAM_CONTENT_COLUMN,
    FRAMES_PER_BRAM_INTERCONNECT_COLUMN,
    FRAMES_PER_CLB_COLUMN,
    FRAMES_PER_CLOCK_COLUMN,
    FRAMES_PER_IOB_COLUMN,
    VirtexDevice,
)

#: Minor frame indices holding routing/interconnect bits of a CLB column.
ROUTING_MINORS = range(0, 24)
#: Minor frame indices holding CLB internal configuration.
LOGIC_MINORS = range(24, 42)
#: Minor frame indices holding state capture / control bits.
STATE_MINORS = range(42, 48)


class ColumnKind(Enum):
    """The kinds of configuration column in a Virtex device."""

    CLOCK = "clock"
    CLB = "clb"
    IOB = "iob"
    BRAM_INTERCONNECT = "bram_interconnect"
    BRAM_CONTENT = "bram_content"


#: Frames per column for each column kind.
FRAMES_PER_COLUMN: dict[ColumnKind, int] = {
    ColumnKind.CLOCK: FRAMES_PER_CLOCK_COLUMN,
    ColumnKind.CLB: FRAMES_PER_CLB_COLUMN,
    ColumnKind.IOB: FRAMES_PER_IOB_COLUMN,
    ColumnKind.BRAM_INTERCONNECT: FRAMES_PER_BRAM_INTERCONNECT_COLUMN,
    ColumnKind.BRAM_CONTENT: FRAMES_PER_BRAM_CONTENT_COLUMN,
}


@dataclass(frozen=True, order=True)
class FrameAddress:
    """Address of one frame: column kind, major (column), minor (frame)."""

    kind: ColumnKind
    major: int
    minor: int

    def __str__(self) -> str:
        return f"{self.kind.value}[{self.major}].{self.minor}"


@dataclass
class WriteStats:
    """Accumulated configuration-port activity.

    ``transactions`` counts distinct write bursts (one FAR + FDRI packet
    pair each); the cost model adds per-transaction protocol overhead on
    top of the per-frame payload bits.
    """

    frames_written: int = 0
    frames_read: int = 0
    transactions: int = 0

    def copy(self) -> "WriteStats":
        """An independent snapshot of the counters."""
        return WriteStats(self.frames_written, self.frames_read, self.transactions)

    def __sub__(self, other: "WriteStats") -> "WriteStats":
        return WriteStats(
            self.frames_written - other.frames_written,
            self.frames_read - other.frames_read,
            self.transactions - other.transactions,
        )


class ConfigMemory:
    """The full configuration memory of one device.

    Columns are laid out left-to-right: the centre clock column, one CLB
    column per CLB array column, two IOB columns, then the block-RAM
    columns.  (The silicon interleaves majors centre-out; the simplified
    left-to-right major numbering changes nothing observable at the level
    of frame counts and write times, which is what the cost model needs.)
    """

    def __init__(self, dev: VirtexDevice) -> None:
        self.device = dev
        self.frame_bytes = dev.frame_bits // 8
        self.stats = WriteStats()
        self._columns: dict[tuple[ColumnKind, int], list[bytearray]] = {}
        self._add_columns(ColumnKind.CLOCK, 1)
        self._add_columns(ColumnKind.CLB, dev.clb_cols)
        self._add_columns(ColumnKind.IOB, 2)
        self._add_columns(ColumnKind.BRAM_INTERCONNECT, dev.bram_cols)
        self._add_columns(ColumnKind.BRAM_CONTENT, dev.bram_cols)

    def _add_columns(self, kind: ColumnKind, count: int) -> None:
        for major in range(count):
            frames = [
                bytearray(self.frame_bytes) for _ in range(FRAMES_PER_COLUMN[kind])
            ]
            self._columns[(kind, major)] = frames

    # -- addressing ------------------------------------------------------

    def column_count(self, kind: ColumnKind) -> int:
        """Number of columns of the given kind."""
        return sum(1 for k, _ in self._columns if k is kind)

    def frames_in_column(self, kind: ColumnKind) -> int:
        """Number of frames in a column of the given kind."""
        return FRAMES_PER_COLUMN[kind]

    def clb_major(self, clb_col: int) -> int:
        """Major address of the configuration column for a CLB column."""
        if not 0 <= clb_col < self.device.clb_cols:
            raise IndexError(
                f"CLB column {clb_col} outside device {self.device.name}"
            )
        return clb_col

    def _frames(self, kind: ColumnKind, major: int) -> list[bytearray]:
        try:
            return self._columns[(kind, major)]
        except KeyError:
            raise IndexError(f"no column {kind.value}[{major}]") from None

    def validate(self, addr: FrameAddress) -> None:
        """Raise ``IndexError`` if ``addr`` does not exist in this device."""
        frames = self._frames(addr.kind, addr.major)
        if not 0 <= addr.minor < len(frames):
            raise IndexError(f"minor {addr.minor} outside column {addr}")

    # -- frame I/O ---------------------------------------------------------

    def read_frame(self, addr: FrameAddress) -> bytes:
        """Read one frame (counts toward readback statistics)."""
        self.validate(addr)
        self.stats.frames_read += 1
        return bytes(self._frames(addr.kind, addr.major)[addr.minor])

    def peek_frame(self, addr: FrameAddress) -> bytes:
        """Read one frame without touching the statistics (model-internal)."""
        self.validate(addr)
        return bytes(self._frames(addr.kind, addr.major)[addr.minor])

    def write_frame(self, addr: FrameAddress, data: bytes) -> None:
        """Write one frame as a standalone transaction."""
        self.write_frames([(addr, data)])

    def write_frames(self, writes: Iterable[tuple[FrameAddress, bytes]]) -> None:
        """Write a burst of frames as a single transaction.

        The paper's tool groups the frame updates of one relocation step
        into one partial configuration file; modelling the burst as one
        transaction charges the protocol overhead once, as the hardware
        does.
        """
        burst = list(writes)
        if not burst:
            return
        for addr, data in burst:
            self.validate(addr)
            if len(data) != self.frame_bytes:
                raise ValueError(
                    f"frame payload must be {self.frame_bytes} bytes, "
                    f"got {len(data)} for {addr}"
                )
            self._frames(addr.kind, addr.major)[addr.minor][:] = data
        self.stats.frames_written += len(burst)
        self.stats.transactions += 1

    def write_column(self, kind: ColumnKind, major: int,
                     frames: list[bytes] | None = None) -> None:
        """Rewrite an entire column as one transaction.

        With ``frames=None`` the current contents are rewritten in place —
        the paper relies on the fact that "rewriting the same configuration
        data does not generate any transient signals" (section 2).
        """
        current = self._frames(kind, major)
        if frames is None:
            frames = [bytes(f) for f in current]
        if len(frames) != len(current):
            raise ValueError(
                f"column {kind.value}[{major}] has {len(current)} frames, "
                f"got {len(frames)}"
            )
        self.write_frames(
            (FrameAddress(kind, major, minor), payload)
            for minor, payload in enumerate(frames)
        )

    def read_column(self, kind: ColumnKind, major: int) -> list[bytes]:
        """Read back an entire column (counts as one read transaction)."""
        frames = self._frames(kind, major)
        self.stats.frames_read += len(frames)
        self.stats.transactions += 1
        return [bytes(f) for f in frames]

    # -- recovery ----------------------------------------------------------

    def snapshot(self) -> dict[tuple[ColumnKind, int], list[bytes]]:
        """Deep copy of the configuration, for the tool's recovery feature
        ("the program always keeps a complete copy of the current
        configuration, enabling system recovery in case of failure",
        section 4)."""
        return {
            key: [bytes(f) for f in frames]
            for key, frames in self._columns.items()
        }

    def restore(self, snap: dict[tuple[ColumnKind, int], list[bytes]]) -> None:
        """Restore a snapshot taken with :meth:`snapshot`."""
        for key, frames in snap.items():
            current = self._columns[key]
            if len(frames) != len(current):
                raise ValueError(f"snapshot shape mismatch for column {key}")
            for minor, payload in enumerate(frames):
                current[minor][:] = payload

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConfigMemory):
            return NotImplemented
        return (
            self.device.name == other.device.name
            and self._columns == other._columns
        )
