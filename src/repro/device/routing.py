"""Routing-resource model: segmented channels, switch matrices, router.

Section 3 of the paper rearranges interconnections "due to the scarcity of
routing resources": paths are first duplicated (original and replica in
parallel) and then the original is disconnected and its switches returned
to the free pool.  To support that, this module models:

* a grid of switch matrices (one per CLB site) joined by segmented wires —
  *single* lines spanning one CLB and *hex* lines spanning six, with
  per-channel capacities in the spirit of the Virtex routing fabric;
* a congestion-aware shortest-path router (Dijkstra over the implicit
  graph) with an explicit *avoid set*, so replica paths can be forced
  disjoint from the original path where required;
* per-segment delay accounting — the propagation-delay analysis of Fig. 6
  needs each path's delay, and "for transient analysis, the propagation
  delay associated to the parallel interconnections shall be the longer
  of the two paths".

Wire usage is tracked per directed channel; allocation beyond capacity
raises, so the "only free routing resources are used" property of the
auxiliary relocation circuit is machine-checked rather than assumed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum

from .devices import VirtexDevice
from .geometry import ClbCoord


class WireKind(Enum):
    """Wire segment classes modelled (subset of the Virtex fabric)."""

    SINGLE = "single"  # spans 1 CLB
    HEX = "hex"        # spans 6 CLBs

    @property
    def span(self) -> int:
        """Number of CLB positions the segment advances."""
        return 1 if self is WireKind.SINGLE else 6


#: Delay charged per segment, in nanoseconds: one switch traversal plus
#: the wire itself.  Values are representative of Virtex -6 speed grade;
#: only ratios matter to the experiments.
SEGMENT_DELAY_NS = {WireKind.SINGLE: 0.7, WireKind.HEX: 1.6}

#: Default per-channel capacities (wires per direction between adjacent
#: switch matrices): Virtex has 24 singles and 12 hexes per direction.
DEFAULT_CAPACITY = {WireKind.SINGLE: 24, WireKind.HEX: 12}


@dataclass(frozen=True, order=True)
class Segment:
    """One allocated wire segment from switch matrix ``a`` to ``b``."""

    a: ClbCoord
    b: ClbCoord
    kind: WireKind

    def columns(self) -> range:
        """CLB columns whose routing frames program this segment."""
        lo = min(self.a.col, self.b.col)
        hi = max(self.a.col, self.b.col)
        return range(lo, hi + 1)

    @property
    def delay_ns(self) -> float:
        """Propagation delay through the segment and its entry switch."""
        return SEGMENT_DELAY_NS[self.kind]

    def __str__(self) -> str:
        return f"{self.a}-{self.kind.value}-{self.b}"


@dataclass
class RoutePath:
    """An ordered chain of segments from a source site to a sink site."""

    source: ClbCoord
    sink: ClbCoord
    segments: list[Segment] = field(default_factory=list)

    @property
    def delay_ns(self) -> float:
        """Total propagation delay along the path."""
        return sum(s.delay_ns for s in self.segments)

    @property
    def length(self) -> int:
        """Number of segments (switch traversals)."""
        return len(self.segments)

    def columns(self) -> set[int]:
        """All CLB columns whose routing frames this path occupies."""
        cols: set[int] = set()
        for s in self.segments:
            cols.update(s.columns())
        return cols

    def nodes(self) -> list[ClbCoord]:
        """Switch matrices traversed, source first."""
        out = [self.source]
        for s in self.segments:
            out.append(s.b)
        return out

    def is_contiguous(self) -> bool:
        """Structural sanity: segments chain from source to sink."""
        at = self.source
        for s in self.segments:
            if s.a != at:
                return False
            at = s.b
        return at == self.sink


class RoutingError(RuntimeError):
    """Raised when a route cannot be found or capacity is violated."""


class RoutingGraph:
    """Wire usage tracker and router over one device's fabric."""

    def __init__(
        self,
        device: VirtexDevice,
        capacity: dict[WireKind, int] | None = None,
    ) -> None:
        self.device = device
        self.capacity = dict(DEFAULT_CAPACITY if capacity is None else capacity)
        #: usage[(a, b, kind)] = wires in use from a to b (directed).
        self.usage: dict[tuple[ClbCoord, ClbCoord, WireKind], int] = {}

    # -- topology ----------------------------------------------------------

    def in_bounds(self, node: ClbCoord) -> bool:
        """True if ``node`` is a valid switch-matrix coordinate."""
        return (
            0 <= node.row < self.device.clb_rows
            and 0 <= node.col < self.device.clb_cols
        )

    def neighbours(self, node: ClbCoord) -> list[tuple[ClbCoord, WireKind]]:
        """Reachable switch matrices and the wire kind reaching them."""
        out: list[tuple[ClbCoord, WireKind]] = []
        for kind in WireKind:
            span = kind.span
            for dr, dc in ((-span, 0), (span, 0), (0, -span), (0, span)):
                nxt = ClbCoord(node.row + dr, node.col + dc)
                if self.in_bounds(nxt):
                    out.append((nxt, kind))
        return out

    # -- usage accounting ---------------------------------------------------

    def used(self, a: ClbCoord, b: ClbCoord, kind: WireKind) -> int:
        """Wires currently in use on the directed channel a->b."""
        return self.usage.get((a, b, kind), 0)

    def free_wires(self, a: ClbCoord, b: ClbCoord, kind: WireKind) -> int:
        """Wires still available on the directed channel a->b."""
        return self.capacity[kind] - self.used(a, b, kind)

    def total_wires_used(self) -> int:
        """Total allocated wire segments across the device."""
        return sum(self.usage.values())

    def allocate(self, path: RoutePath) -> None:
        """Claim every segment of ``path``; raises if any channel is full.

        This is the invariant behind the paper's replica paths: they can
        only be built from *free* routing resources.
        """
        if not path.is_contiguous():
            raise RoutingError(f"path {path.source}->{path.sink} is not contiguous")
        for s in path.segments:
            if self.free_wires(s.a, s.b, s.kind) <= 0:
                raise RoutingError(f"channel {s} is out of {s.kind.value} wires")
        for s in path.segments:
            key = (s.a, s.b, s.kind)
            self.usage[key] = self.usage.get(key, 0) + 1

    def release(self, path: RoutePath) -> None:
        """Return every segment of ``path`` to the free pool."""
        for s in path.segments:
            key = (s.a, s.b, s.kind)
            current = self.usage.get(key, 0)
            if current <= 0:
                raise RoutingError(f"releasing unallocated segment {s}")
            if current == 1:
                del self.usage[key]
            else:
                self.usage[key] = current - 1

    # -- routing -------------------------------------------------------------

    def route(
        self,
        source: ClbCoord,
        sink: ClbCoord,
        avoid: set[tuple[ClbCoord, ClbCoord, WireKind]] | None = None,
        congestion_weight: float = 0.5,
    ) -> RoutePath:
        """Find a minimum-delay path from ``source`` to ``sink``.

        ``avoid`` lists directed channels the path must not use (e.g. the
        original path's channels, when building a physically disjoint
        replica).  Channels with no free wires are never used.  Raises
        :class:`RoutingError` when no path exists.
        """
        if not self.in_bounds(source) or not self.in_bounds(sink):
            raise RoutingError(f"route endpoints {source}->{sink} out of bounds")
        if source == sink:
            return RoutePath(source, sink, [])
        avoid = avoid or set()
        best: dict[ClbCoord, float] = {source: 0.0}
        back: dict[ClbCoord, Segment] = {}
        heap: list[tuple[float, int, ClbCoord]] = [(0.0, 0, source)]
        tie = 0
        while heap:
            cost, _, node = heapq.heappop(heap)
            if node == sink:
                break
            if cost > best.get(node, float("inf")):
                continue
            for nxt, kind in self.neighbours(node):
                key = (node, nxt, kind)
                if key in avoid or self.free_wires(node, nxt, kind) <= 0:
                    continue
                penalty = congestion_weight * self.used(node, nxt, kind)
                ncost = cost + SEGMENT_DELAY_NS[kind] + penalty
                if ncost < best.get(nxt, float("inf")):
                    best[nxt] = ncost
                    back[nxt] = Segment(node, nxt, kind)
                    tie += 1
                    heapq.heappush(heap, (ncost, tie, nxt))
        if sink not in back:
            raise RoutingError(f"no route {source}->{sink} with free wires")
        segments: list[Segment] = []
        at = sink
        while at != source:
            seg = back[at]
            segments.append(seg)
            at = seg.a
        segments.reverse()
        return RoutePath(source, sink, segments)

    def route_and_allocate(
        self,
        source: ClbCoord,
        sink: ClbCoord,
        avoid: set[tuple[ClbCoord, ClbCoord, WireKind]] | None = None,
    ) -> RoutePath:
        """Route and immediately claim the path (the common case)."""
        path = self.route(source, sink, avoid=avoid)
        self.allocate(path)
        return path


def path_channels(path: RoutePath) -> set[tuple[ClbCoord, ClbCoord, WireKind]]:
    """The directed channels a path occupies (for use as an avoid set)."""
    return {(s.a, s.b, s.kind) for s in path.segments}
