"""IEEE 1149.1 (Boundary Scan) test access port model.

The paper performs every reconfiguration through the Boundary Scan
infrastructure at a test clock (TCK) of 20 MHz, and reports an average
relocation time of 22.6 ms per gated-clock CLB (section 2).  Reproducing
that number requires an honest accounting of TCK cycles, which is what
this module provides:

* :class:`TapController` — the full 16-state TAP state machine, driven by
  TMS values, so instruction and data shifts pay the real state-walk
  overhead.
* :class:`BoundaryScanPort` — a configuration port that shifts
  instructions (CFG_IN, CFG_OUT, JSTART ...) and configuration data one
  bit per TCK cycle and accumulates the elapsed cycle count, convertible
  to seconds through the TCK frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

#: Virtex JTAG instruction register length in bits.
IR_LENGTH = 5

#: Virtex configuration JTAG instructions (values per the data sheet;
#: only their lengths matter for timing).
INSTRUCTIONS = {
    "CFG_IN": 0b00101,
    "CFG_OUT": 0b00100,
    "JSTART": 0b01100,
    "IDCODE": 0b01001,
    "BYPASS": 0b11111,
}


class TapState(Enum):
    """The sixteen states of the IEEE 1149.1 TAP controller."""

    TEST_LOGIC_RESET = "test-logic-reset"
    RUN_TEST_IDLE = "run-test-idle"
    SELECT_DR_SCAN = "select-dr-scan"
    CAPTURE_DR = "capture-dr"
    SHIFT_DR = "shift-dr"
    EXIT1_DR = "exit1-dr"
    PAUSE_DR = "pause-dr"
    EXIT2_DR = "exit2-dr"
    UPDATE_DR = "update-dr"
    SELECT_IR_SCAN = "select-ir-scan"
    CAPTURE_IR = "capture-ir"
    SHIFT_IR = "shift-ir"
    EXIT1_IR = "exit1-ir"
    PAUSE_IR = "pause-ir"
    EXIT2_IR = "exit2-ir"
    UPDATE_IR = "update-ir"


#: TAP state transition table: state -> (next if TMS=0, next if TMS=1).
_T = TapState
TRANSITIONS: dict[TapState, tuple[TapState, TapState]] = {
    _T.TEST_LOGIC_RESET: (_T.RUN_TEST_IDLE, _T.TEST_LOGIC_RESET),
    _T.RUN_TEST_IDLE: (_T.RUN_TEST_IDLE, _T.SELECT_DR_SCAN),
    _T.SELECT_DR_SCAN: (_T.CAPTURE_DR, _T.SELECT_IR_SCAN),
    _T.CAPTURE_DR: (_T.SHIFT_DR, _T.EXIT1_DR),
    _T.SHIFT_DR: (_T.SHIFT_DR, _T.EXIT1_DR),
    _T.EXIT1_DR: (_T.PAUSE_DR, _T.UPDATE_DR),
    _T.PAUSE_DR: (_T.PAUSE_DR, _T.EXIT2_DR),
    _T.EXIT2_DR: (_T.SHIFT_DR, _T.UPDATE_DR),
    _T.UPDATE_DR: (_T.RUN_TEST_IDLE, _T.SELECT_DR_SCAN),
    _T.SELECT_IR_SCAN: (_T.CAPTURE_IR, _T.TEST_LOGIC_RESET),
    _T.CAPTURE_IR: (_T.SHIFT_IR, _T.EXIT1_IR),
    _T.SHIFT_IR: (_T.SHIFT_IR, _T.EXIT1_IR),
    _T.EXIT1_IR: (_T.PAUSE_IR, _T.UPDATE_IR),
    _T.PAUSE_IR: (_T.PAUSE_IR, _T.EXIT2_IR),
    _T.EXIT2_IR: (_T.SHIFT_IR, _T.UPDATE_IR),
    _T.UPDATE_IR: (_T.RUN_TEST_IDLE, _T.SELECT_DR_SCAN),
}

#: Shortest TMS walks between the states the configuration flow uses.
_TMS_PATHS: dict[tuple[TapState, TapState], tuple[int, ...]] = {
    (_T.TEST_LOGIC_RESET, _T.RUN_TEST_IDLE): (0,),
    (_T.RUN_TEST_IDLE, _T.SHIFT_IR): (1, 1, 0, 0),
    (_T.RUN_TEST_IDLE, _T.SHIFT_DR): (1, 0, 0),
    (_T.SHIFT_IR, _T.RUN_TEST_IDLE): (1, 1, 0),
    (_T.SHIFT_DR, _T.RUN_TEST_IDLE): (1, 1, 0),
    (_T.EXIT1_IR, _T.RUN_TEST_IDLE): (1, 0),
    (_T.EXIT1_DR, _T.RUN_TEST_IDLE): (1, 0),
}


class TapController:
    """A cycle-accurate TAP state machine.

    Every call to :meth:`clock` advances one TCK cycle; the controller
    counts cycles so that higher layers can convert activity to time.
    """

    def __init__(self) -> None:
        self.state = TapState.TEST_LOGIC_RESET
        self.cycles = 0
        self.ir = INSTRUCTIONS["BYPASS"]
        self._shift_reg = 0
        self._shift_count = 0

    def clock(self, tms: int, tdi: int = 0) -> None:
        """Advance one TCK cycle with the given TMS (and TDI) values."""
        if self.state in (TapState.SHIFT_IR, TapState.SHIFT_DR):
            self._shift_reg = (self._shift_reg >> 1) | (
                (tdi & 1) << (self._shift_count - 1) if self._shift_count else 0
            )
        self.state = TRANSITIONS[self.state][tms & 1]
        self.cycles += 1

    def reset(self) -> None:
        """Force Test-Logic-Reset with five TMS=1 cycles (the standard's
        guaranteed synchronisation sequence)."""
        for _ in range(5):
            self.clock(tms=1)
        assert self.state is TapState.TEST_LOGIC_RESET

    def walk_to(self, target: TapState) -> None:
        """Move to ``target`` along the canonical shortest TMS path."""
        if self.state is target:
            return
        try:
            path = _TMS_PATHS[(self.state, target)]
        except KeyError:
            raise ValueError(
                f"no canonical TMS path {self.state.value} -> {target.value}"
            ) from None
        for tms in path:
            self.clock(tms)
        assert self.state is target

    def shift(self, nbits: int) -> None:
        """Shift ``nbits`` bits through the current shift state, leaving on
        the last bit (TMS=1 moves to Exit1).

        Cycle accounting is exact — one TCK per bit — but bulk-advanced:
        the first ``nbits - 1`` cycles hold TMS=0 (the shift state is its
        own TMS=0 successor), the final cycle's TMS=1 moves to Exit1.
        """
        if self.state not in (TapState.SHIFT_IR, TapState.SHIFT_DR):
            raise RuntimeError(f"cannot shift in state {self.state.value}")
        if nbits <= 0:
            return
        self.cycles += nbits
        self.state = TRANSITIONS[self.state][1]  # final bit, TMS=1 -> Exit1


@dataclass
class PortStats:
    """Accumulated Boundary-Scan activity."""

    instructions: int = 0
    data_bits: int = 0
    cycles: int = 0


class BoundaryScanPort:
    """Configuration port over Boundary Scan at a given TCK frequency.

    The flow for one configuration burst mirrors the Virtex JTAG
    configuration sequence: load CFG_IN, shift the packet words into the
    data register one bit per cycle, return to Run-Test/Idle.  The port
    accumulates exact TCK cycle counts; :attr:`elapsed` converts to
    seconds.  The paper's experiments use ``tck_hz = 20e6``.
    """

    def __init__(self, tck_hz: float = 20e6) -> None:
        if tck_hz <= 0:
            raise ValueError("TCK frequency must be positive")
        self.tck_hz = tck_hz
        self.tap = TapController()
        self.stats = PortStats()
        self.tap.reset()
        self.tap.walk_to(TapState.RUN_TEST_IDLE)
        self._sync_cycles = self.tap.cycles

    @property
    def cycles(self) -> int:
        """Total TCK cycles consumed so far."""
        return self.tap.cycles

    @property
    def elapsed(self) -> float:
        """Seconds of TCK activity so far."""
        return self.tap.cycles / self.tck_hz

    def load_instruction(self, name: str) -> None:
        """Shift a 5-bit instruction into the IR."""
        if name not in INSTRUCTIONS:
            raise KeyError(f"unknown JTAG instruction {name!r}")
        self.tap.walk_to(TapState.SHIFT_IR)
        self.tap.shift(IR_LENGTH)
        self.tap.walk_to(TapState.RUN_TEST_IDLE)
        self.tap.ir = INSTRUCTIONS[name]
        self.stats.instructions += 1

    def shift_data(self, nbits: int) -> None:
        """Shift ``nbits`` through the data register (1 bit per TCK)."""
        if nbits <= 0:
            return
        self.tap.walk_to(TapState.SHIFT_DR)
        self.tap.shift(nbits)
        self.tap.walk_to(TapState.RUN_TEST_IDLE)
        self.stats.data_bits += nbits
        self.stats.cycles = self.tap.cycles

    def configure(self, words: int) -> float:
        """Run one configuration burst of ``words`` 32-bit packet words.

        Returns the time in seconds that the burst consumed.  The burst
        pays: CFG_IN instruction load, the data shift, and a JSTART-less
        return to idle (partial reconfiguration does not restart the
        device).
        """
        before = self.tap.cycles
        self.load_instruction("CFG_IN")
        self.shift_data(words * 32)
        return (self.tap.cycles - before) / self.tck_hz

    def readback(self, words: int) -> float:
        """Run one readback burst of ``words`` 32-bit words via CFG_OUT."""
        before = self.tap.cycles
        self.load_instruction("CFG_IN")  # command sequence for readback
        self.shift_data(8 * 32)  # small command packet selecting readback
        self.load_instruction("CFG_OUT")
        self.shift_data(words * 32)
        return (self.tap.cycles - before) / self.tck_hz


class SelectMapPort:
    """A parallel configuration port (SelectMAP/ICAP style), one byte per
    clock, for the write-granularity ablation in the FIG4 bench.

    The paper used Boundary Scan; SelectMAP at 50 MHz is roughly 20x
    faster per bit, which bounds how much of the 22.6 ms is protocol
    versus payload.
    """

    def __init__(self, clock_hz: float = 50e6) -> None:
        if clock_hz <= 0:
            raise ValueError("clock frequency must be positive")
        self.clock_hz = clock_hz
        self.cycles = 0
        self.stats = PortStats()

    @property
    def elapsed(self) -> float:
        """Seconds of configuration-clock activity so far."""
        return self.cycles / self.clock_hz

    def configure(self, words: int) -> float:
        """One burst of ``words`` 32-bit words, 4 cycles per word (one
        byte per clock) plus a small per-burst setup cost."""
        burst = 16 + words * 4
        self.cycles += burst
        self.stats.data_bits += words * 32
        self.stats.cycles = self.cycles
        return burst / self.clock_hz

    def readback(self, words: int) -> float:
        """One readback burst; same cost shape as configuration."""
        return self.configure(words)
