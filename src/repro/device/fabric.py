"""The fabric: CLB site occupancy, logic-cell configuration and routing.

:class:`Fabric` ties together the pieces the on-line manager operates on:

* a 2-D occupancy grid of CLB sites (which function owns which region),
* per-site :class:`~repro.device.clb.ClbConfig` records,
* the :class:`~repro.device.routing.RoutingGraph` of the device,
* optionally a :class:`~repro.device.config_memory.ConfigMemory`, so that
  logical operations (place, vacate, relocate) can be mirrored into frame
  writes by the tool layer.

The paper's problem statement lives at exactly this level: "many small
pools of resources are created as they are released ... leading to a
fragmentation of the FPGA logic space" (section 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.placement.free_space import FreeSpaceIndex, make_free_space

from .clb import ClbConfig, LogicCellConfig
from .config_memory import ConfigMemory
from .devices import VirtexDevice
from .geometry import CellCoord, ClbCoord, Rect
from .routing import RoutingGraph

#: Occupancy value of a free CLB site.
FREE = 0


class FabricError(RuntimeError):
    """Raised on illegal fabric operations (double allocation, etc.)."""


class Fabric:
    """Run-time state of one device's logic space.

    Every occupancy mutation is delegated to the attached free-space
    engine (``free_space``, one of
    :data:`~repro.placement.free_space.FREE_SPACE_NAMES`), which keeps
    the maximal-empty-rectangle set consistent with the grid — there is
    no mutate-then-forget-to-invalidate path through the fabric API.
    """

    def __init__(self, device: VirtexDevice,
                 with_config_memory: bool = False,
                 free_space: str = "incremental") -> None:
        self.device = device
        self.occupancy = np.zeros((device.clb_rows, device.clb_cols), dtype=np.int32)
        self.free_space: FreeSpaceIndex = make_free_space(
            free_space, self.occupancy
        )
        self.routing = RoutingGraph(device)
        self.config_memory = ConfigMemory(device) if with_config_memory else None
        self._clbs: dict[ClbCoord, ClbConfig] = {}

    # -- geometry helpers ----------------------------------------------------

    @property
    def bounds(self) -> Rect:
        """The whole CLB array as a rectangle."""
        return Rect(0, 0, self.device.clb_rows, self.device.clb_cols)

    def in_bounds(self, rect: Rect) -> bool:
        """True if ``rect`` fits inside the CLB array."""
        return self.bounds.contains_rect(rect)

    # -- occupancy -------------------------------------------------------------

    def occupant(self, coord: ClbCoord) -> int:
        """Owner id of a site (:data:`FREE` when unoccupied)."""
        return int(self.occupancy[coord.row, coord.col])

    def is_free(self, coord: ClbCoord) -> bool:
        """True when the site belongs to no function."""
        return self.occupant(coord) == FREE

    def region_is_free(self, rect: Rect) -> bool:
        """True when every site of ``rect`` is free (and in bounds)."""
        if not self.in_bounds(rect):
            return False
        view = self.occupancy[rect.row : rect.row_end, rect.col : rect.col_end]
        return bool((view == FREE).all())

    def allocate_region(self, rect: Rect, owner: int) -> None:
        """Claim ``rect`` for function ``owner`` (a positive id)."""
        if owner <= FREE:
            raise ValueError(f"owner id must be positive, got {owner}")
        if not self.region_is_free(rect):
            raise FabricError(f"region {rect} is not entirely free")
        self.free_space.allocate(rect, owner)

    def free_region(self, rect: Rect, owner: int | None = None) -> None:
        """Return ``rect`` to the free pool, vacating its cells.

        With ``owner`` given, verifies every site belonged to that owner —
        catching manager bookkeeping bugs early.
        """
        if not self.in_bounds(rect):
            raise FabricError(f"region {rect} out of bounds")
        view = self.occupancy[rect.row : rect.row_end, rect.col : rect.col_end]
        if owner is not None and not bool((view == owner).all()):
            raise FabricError(f"region {rect} is not wholly owned by {owner}")
        self.free_space.release(rect)
        if self._clbs:
            for site in rect.sites():
                self._clbs.pop(site, None)

    def move_region(self, src: Rect, dst: Rect, owner: int) -> None:
        """Relocate a whole function footprint from ``src`` to ``dst``.

        Carries the CLB configurations across.  ``dst`` must be free
        except where it overlaps ``src`` (the paper's staged nearby moves
        may slide a function onto partially overlapping space).
        """
        if not self.in_bounds(dst):
            raise FabricError(f"destination {dst} out of bounds")
        if (src.height, src.width) != (dst.height, dst.width):
            raise FabricError("move must preserve the footprint shape")
        dst_view = self.occupancy[dst.row : dst.row_end,
                                  dst.col : dst.col_end]
        bad = dst_view != FREE
        if bad.any():
            # Sites shared with the source may stay owned by the mover
            # (the paper's staged nearby moves slide onto overlapping
            # space); anything else busy is an error.
            for r, c in zip(*np.nonzero(bad)):
                site = ClbCoord(dst.row + int(r), dst.col + int(c))
                occ = int(dst_view[r, c])
                if not (src.contains(site) and occ == owner):
                    raise FabricError(
                        f"destination site {site} busy (owner {occ})"
                    )
        src_view = self.occupancy[src.row : src.row_end,
                                  src.col : src.col_end]
        if not bool((src_view == owner).all()):
            for site in src.sites():
                if self.occupant(site) != owner:
                    raise FabricError(
                        f"source site {site} not owned by {owner}"
                    )
        moved: dict[ClbCoord, ClbConfig] = {}
        if self._clbs:
            for site in src.sites():
                cfg = self._clbs.pop(site, None)
                if cfg is not None:
                    target = ClbCoord(
                        site.row - src.row + dst.row,
                        site.col - src.col + dst.col,
                    )
                    moved[target] = cfg
        # The engine sees the same two steps the configuration port pays
        # for: vacate the source, then claim the destination (the
        # intermediate all-free state makes overlapping slides legal).
        self.free_space.release(src)
        self.free_space.allocate(dst, owner)
        self._clbs.update(moved)

    # -- logic cells -------------------------------------------------------------

    def clb(self, coord: ClbCoord) -> ClbConfig:
        """The (lazily created) configuration record of a CLB site."""
        if not self.bounds.contains(coord):
            raise FabricError(f"CLB {coord} out of bounds")
        if coord not in self._clbs:
            self._clbs[coord] = ClbConfig()
        return self._clbs[coord]

    def place_cell(self, site: CellCoord, config: LogicCellConfig) -> None:
        """Configure one logic cell at ``site``."""
        self.clb(site.clb).place_cell(site.cell, config)

    def vacate_cell(self, site: CellCoord) -> None:
        """Return one logic cell to the free pool."""
        self.clb(site.clb).vacate_cell(site.cell)

    def cell_config(self, site: CellCoord) -> LogicCellConfig:
        """Current configuration of one logic cell."""
        return self.clb(site.clb).cells[site.cell]

    def find_free_cell_near(self, near: ClbCoord,
                            max_distance: int | None = None) -> CellCoord | None:
        """Nearest free logic cell to ``near`` (for the auxiliary
        relocation circuit, which lives "in a nearby (free) CLB").

        Searches sites in increasing Manhattan distance; a site qualifies
        if it is unowned or its CLB still has a free cell.  Returns
        ``None`` when nothing is available within ``max_distance``.
        """
        limit = max_distance
        if limit is None:
            limit = self.device.clb_rows + self.device.clb_cols
        for dist in range(0, limit + 1):
            for dr in range(-dist, dist + 1):
                dc = dist - abs(dr)
                for signed_dc in {dc, -dc}:
                    coord = ClbCoord(near.row + dr, near.col + signed_dc)
                    if not self.bounds.contains(coord):
                        continue
                    clb = self._clbs.get(coord)
                    if clb is None:
                        if self.is_free(coord):
                            return CellCoord(coord.row, coord.col, 0)
                        continue
                    free = clb.free_cell_indices()
                    if free:
                        return CellCoord(coord.row, coord.col, free[0])
        return None

    def lut_ram_columns(self) -> set[int]:
        """CLB columns containing at least one distributed-RAM cell.

        The paper forbids relocations whose frames touch such columns:
        rewriting a frame that crosses a LUT/RAM would race its runtime
        contents (section 2, after [12]).
        """
        return {
            coord.col
            for coord, clb in self._clbs.items()
            if clb.has_lut_ram
        }

    # -- statistics -----------------------------------------------------------

    def free_site_count(self) -> int:
        """Number of free CLB sites."""
        return int((self.occupancy == FREE).sum())

    def utilization(self) -> float:
        """Fraction of CLB sites currently owned by functions."""
        return 1.0 - self.free_site_count() / self.device.clb_count

    def owners(self) -> set[int]:
        """All function ids currently resident."""
        ids = np.unique(self.occupancy)
        return {int(i) for i in ids if i != FREE}

    def footprint(self, owner: int) -> Rect | None:
        """Bounding rectangle of an owner's sites (None if absent).

        Functions are placed as solid rectangles by the manager, so the
        bounding box *is* the footprint; an assertion guards that.
        """
        rows, cols = np.nonzero(self.occupancy == owner)
        if rows.size == 0:
            return None
        rect = Rect(
            int(rows.min()),
            int(cols.min()),
            int(rows.max() - rows.min() + 1),
            int(cols.max() - cols.min() + 1),
        )
        view = self.occupancy[rect.row : rect.row_end, rect.col : rect.col_end]
        if not bool((view == owner).all()):
            raise FabricError(f"owner {owner} footprint is not rectangular")
        return rect
