"""repro — reproduction of "Run-Time Management of Logic Resources on
Reconfigurable Systems" (Gericota, Alves, Silva, Ferreira — DATE 2003).

The package implements, in pure Python:

* a behavioural Virtex-class device model (``repro.device``): CLB array,
  configuration memory organised in frames and columns, partial
  bitstreams, Boundary-Scan port and routing fabric;
* a LUT/FF netlist substrate with cycle-accurate and timed simulation
  (``repro.netlist``), including ITC'99-statistics benchmark circuits;
* the paper's contribution (``repro.core``): the two-phase dynamic CLB
  relocation procedure, the auxiliary relocation circuit for gated-clock
  and asynchronous circuits, routing relocation, the reconfiguration cost
  model, the on-line logic-space manager/defragmenter and the
  rearrangement-and-programming tool;
* 2-D placement and free-space management (``repro.placement``) with the
  Diessel-style rearrangement baselines;
* a discrete-event on-line scheduling substrate (``repro.sched``);
* multi-fabric fleet scheduling with pluggable device-selection
  policies (``repro.fleet``) and the declarative experiment-campaign
  engine over every axis (``repro.campaign``).

See README.md and DESIGN.md for the architecture, and EXPERIMENTS.md for
the paper-versus-measured record.
"""

__version__ = "1.0.0"
