"""ASCII reporting used by the benchmark harness.

Every bench prints the rows/series corresponding to its paper figure in
a uniform table format, so EXPERIMENTS.md can quote outputs verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A padded ASCII table with a title."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        """Append one row (cells are str()-ed; floats get 4 significant
        digits unless already strings)."""
        row = []
        for cell in cells:
            if isinstance(cell, float):
                row.append(f"{cell:.4g}")
            else:
                row.append(str(cell))
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """The formatted table."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append(sep)
        for row in self.rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def show(self) -> None:
        """Print the table (benches call this so pytest -s shows it)."""
        print()
        print(self.render())


def series(title: str, xs: list[object], ys: list[object],
           x_label: str = "x", y_label: str = "y") -> Table:
    """A two-column table from parallel lists (a printed 'figure')."""
    if len(xs) != len(ys):
        raise ValueError("series lists must have equal length")
    table = Table(title, [x_label, y_label])
    for x, y in zip(xs, ys):
        table.add(x, y)
    return table
