"""Small statistics helpers shared by benches and examples."""

from __future__ import annotations

import math


def mean(values: list[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    return sum(values) / len(values) if values else 0.0


def stddev(values: list[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two values)."""
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


def median(values: list[float]) -> float:
    """Median (0.0 for empty input)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return ordered[lo]
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def confidence_interval_95(values: list[float]) -> tuple[float, float]:
    """Normal-approximation 95 % confidence interval of the mean."""
    mu = mean(values)
    if len(values) < 2:
        return (mu, mu)
    half = 1.96 * stddev(values) / math.sqrt(len(values))
    return (mu - half, mu + half)
