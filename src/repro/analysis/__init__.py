"""Analysis helpers: statistics and ASCII reporting for the benches."""

from .reporting import Table, series
from .stats import (
    confidence_interval_95,
    mean,
    median,
    percentile,
    stddev,
)
from .visualize import (
    render_occupancy,
    render_timeline,
    timeline_from_application_runs,
)

__all__ = [
    "Table",
    "confidence_interval_95",
    "mean",
    "median",
    "percentile",
    "render_occupancy",
    "render_timeline",
    "series",
    "stddev",
    "timeline_from_application_runs",
]
