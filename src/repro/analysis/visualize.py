"""ASCII visualisation of the logic space and schedules.

Renders the two pictures the paper's figures rely on:

* :func:`render_occupancy` — the CLB array with one character per site
  (the defragmentation story at a glance);
* :func:`render_timeline` — a Fig. 1-style Gantt chart of application
  functions over time, with configuration intervals marked.
"""

from __future__ import annotations

import numpy as np

#: Characters for owners 1..35 (0 renders as '.').
_OWNER_CHARS = "123456789abcdefghijklmnopqrstuvwxyz"


def render_occupancy(occupancy: np.ndarray, max_cols: int = 60) -> str:
    """One character per CLB site; '.' for free, cycling ids otherwise."""
    lines = []
    for row in occupancy[:, :max_cols]:
        chars = []
        for value in row:
            if value == 0:
                chars.append(".")
            else:
                chars.append(_OWNER_CHARS[(int(value) - 1) % len(_OWNER_CHARS)])
        lines.append("".join(chars))
    return "\n".join(lines)


def render_timeline(
    rows: list[tuple[str, list[tuple[float, float, str]]]],
    t_end: float | None = None,
    width: int = 72,
) -> str:
    """A Gantt chart: one labelled row per application.

    ``rows`` maps a label to segments ``(start, end, glyph)`` — e.g. one
    glyph per function, ``#`` for execution and ``~`` for configuration
    intervals (the paper's *rt*).  Times are scaled to ``width`` columns.
    """
    if not rows:
        return ""
    horizon = t_end
    if horizon is None:
        horizon = max(
            (end for _, segments in rows for __, end, ___ in segments),
            default=1.0,
        )
    if horizon <= 0:
        horizon = 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, segments in rows:
        canvas = [" "] * width
        for start, end, glyph in segments:
            lo = int(round(start / horizon * (width - 1)))
            hi = int(round(end / horizon * (width - 1)))
            for x in range(max(0, lo), min(width, hi + 1)):
                canvas[x] = glyph[0] if glyph else "#"
        lines.append(f"{label.rjust(label_width)} |{''.join(canvas)}|")
    axis = f"{' ' * label_width} 0{' ' * (width - len(f'{horizon:.2g}') - 1)}{horizon:.2g}"
    lines.append(axis)
    return "\n".join(lines)


def timeline_from_application_runs(runs) -> list[
    tuple[str, list[tuple[float, float, str]]]
]:
    """Build :func:`render_timeline` rows from
    :class:`~repro.sched.tasks.ApplicationRun` records: digits mark the
    executing function index, '~' marks its configuration interval."""
    rows = []
    for record in runs:
        config_segments: list[tuple[float, float, str]] = []
        exec_segments: list[tuple[float, float, str]] = []
        for index, fn_run in enumerate(record.runs):
            glyph = str((index + 1) % 10)
            if (
                fn_run.configured_at is not None
                and fn_run.started_at is not None
                and fn_run.configured_at < fn_run.started_at
            ):
                config_segments.append(
                    (fn_run.configured_at, fn_run.started_at, "~")
                )
            if fn_run.started_at is not None and fn_run.finished_at:
                exec_segments.append(
                    (fn_run.started_at, fn_run.finished_at, glyph)
                )
        # Configuration intervals first so execution overdraws them:
        # a '~' then only shows where nothing was executing.
        rows.append((record.spec.name, config_segments + exec_segments))
    return rows
