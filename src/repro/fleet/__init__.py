"""Multi-fabric fleet scheduling: shard one workload across N devices.

The paper's run-time manager governs *one* reconfigurable device.  This
package adds the device dimension on top without duplicating any of the
single-device machinery:

* :mod:`repro.fleet.manager` — :class:`FleetManager`, a drop-in for the
  :class:`~repro.core.manager.LogicSpaceManager` surface the schedulers
  consume, multiplexing placements over member managers (possibly
  heterogeneous devices) and routing releases back to the hosting
  fabric;
* :mod:`repro.fleet.policies` — pluggable device-selection policies
  (``first-fit`` / ``round-robin`` / ``least-loaded`` / ``best-fit``)
  deciding which member a request tries first.

The :class:`~repro.sched.kernel.SchedulingKernel` recognises a fleet by
its ``members`` attribute and instantiates one reconfiguration-port
model per member, so port charging, HALT arithmetic and proactive
defragmentation all stay per-device.  Campaigns sweep the axis through
``--fleet-size`` / ``--device-policy`` / ``--fleet-devices``
(:mod:`repro.campaign`).
"""

from .manager import FleetManager
from .policies import (
    DEFAULT_DEVICE_POLICY,
    DEVICE_POLICIES,
    DEVICE_POLICY_NAMES,
    BestFitPolicy,
    DeviceSelectionPolicy,
    FirstFitPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    make_device_policy,
)

__all__ = [
    "DEFAULT_DEVICE_POLICY",
    "DEVICE_POLICIES",
    "DEVICE_POLICY_NAMES",
    "BestFitPolicy",
    "DeviceSelectionPolicy",
    "FirstFitPolicy",
    "FleetManager",
    "LeastLoadedPolicy",
    "RoundRobinPolicy",
    "make_device_policy",
]
