"""The fleet manager: one placement stream sharded across N fabrics.

The paper manages the logic space of a *single* reconfigurable device;
:class:`FleetManager` is the scaling axis on top: it presents the same
request/release surface as one
:class:`~repro.core.manager.LogicSpaceManager`, but multiplexes every
placement over a fleet of independent member managers — possibly
heterogeneous device models, each with its own fabric, free-space
engine, defrag trigger policy and (at the scheduling layer) its own
reconfiguration port.

Division of labour:

* a :class:`~repro.fleet.policies.DeviceSelectionPolicy` turns each
  request into a preference order over members; the fleet tries members
  in that order until one accepts (rearrangement-capable members are
  ordered last by the fit-aware policies, so planners only run when no
  device fits directly);
* every accepted owner is recorded in an owner → (device, area) map, so
  :meth:`release` routes to the right fabric in O(1) and the per-device
  allocated-area counters behind the ``least-loaded`` policy never
  rescan residents;
* relocation and defragmentation stay *intra-fabric*: a member's
  rearrangements never cross devices (there is no inter-device
  relocation path in the paper's mechanism, and the scheduling kernel
  charges each member's moves to that member's own port).

A 1-member fleet is a perfect proxy for its single manager: every call
delegates unchanged, which is what lets both schedulers run on a fleet
with bit-identical default event streams (pinned by
``tests/test_fleet.py`` against the golden snapshots).
"""

from __future__ import annotations

from repro.core.manager import LogicSpaceManager, PlacementOutcome
from repro.device.fabric import Fabric
from repro.perf import PERF

from .policies import DeviceSelectionPolicy, make_device_policy


class FleetManager:
    """Shard placements across member :class:`LogicSpaceManager` s."""

    def __init__(
        self,
        members: list[LogicSpaceManager],
        policy: str | DeviceSelectionPolicy = "first-fit",
    ) -> None:
        if not members:
            raise ValueError("a fleet needs at least one member manager")
        self.members = list(members)
        self.policy = make_device_policy(policy)
        #: owner id -> (member index, allocated area): release routing
        #: and the O(1) load counters in one map.
        self._owners: dict[int, tuple[int, int]] = {}
        self._areas = [0] * len(self.members)
        #: (member index, height, width) -> (free-space generation at
        #: the failed probe, its dominance certificate).  A member's
        #: ``request`` is a pure function of its occupancy, and a
        #: *failed* request never mutates it — so while the member's
        #: generation still equals the memoed one, re-probing the same
        #: shape is guaranteed to reproduce the same rejection and is
        #: skipped (``fleet_member_skips`` counts these).  Entries are
        #: simply superseded when a newer generation fails again; stale
        #: generations never match, so no eviction is needed.
        self._member_shape_failed: dict[
            tuple[int, int, int], tuple[int, bool]
        ] = {}
        #: members declared dead by fault injection (see
        #: :mod:`repro.faults`): :meth:`request` and
        #: :meth:`prefetch_admission` never touch them, telemetry stops
        #: weighting them, and the dominance certificate of a failed
        #: request covers survivors only.  Empty outside fault runs.
        self.lost: set[int] = set()

    # -- fleet introspection -------------------------------------------------

    def __len__(self) -> int:
        """Number of member devices."""
        return len(self.members)

    @property
    def fabric(self) -> Fabric:
        """The primary member's fabric.

        Workload generators size their rectangles against one device;
        by convention that is member 0 (campaign specs put the
        scenario's ``device`` there).  Oversized requests simply never
        fit smaller secondary members.  This is a *sizing* convention
        only — telemetry must never read it (the scheduling kernel
        samples every member and aggregates site-weighted, so a
        heterogeneous fleet is reported by all the fabrics it owns).
        """
        return self.members[0].fabric

    @property
    def device_names(self) -> tuple[str, ...]:
        """Member device names, in fleet order."""
        return tuple(m.fabric.device.name for m in self.members)

    def load(self, index: int) -> float:
        """Allocated-site fraction of member ``index`` (O(1))."""
        return self._areas[index] / self.members[index].fabric.device.clb_count

    def largest_free_area(self, index: int) -> int:
        """Area of member ``index``'s largest free rectangle."""
        return max(
            (r.area for r in self.members[index].free_space.mers), default=0
        )

    def device_of(self, owner: int) -> int:
        """Member index currently hosting ``owner``."""
        return self._owners[owner][0]

    def mark_lost(self, index: int) -> None:
        """Declare member ``index`` dead (fleet failover, see
        :mod:`repro.faults`).

        From this instant the member receives no placements, warms no
        caches and contributes nothing to fleet telemetry.  The caller
        (the scheduler's failover path) is responsible for displacing
        the residents it was hosting — their owner-routing entries stay
        valid until each is individually released.  Idempotent.
        """
        if not 0 <= index < len(self.members):
            raise ValueError(f"no fleet member {index}")
        self.lost.add(index)

    def residents_of(self, index: int) -> list[int]:
        """Owner ids currently hosted on member ``index`` (sorted, so
        failover displaces them in a deterministic order)."""
        return sorted(
            owner for owner, (device, _area) in self._owners.items()
            if device == index
        )

    # -- the manager-protocol surface ---------------------------------------

    def request(self, height: int, width: int,
                owner: int) -> PlacementOutcome:
        """Place a ``height`` x ``width`` function on the fleet.

        Members are attempted in the selection policy's preference
        order; the first accepting member tags the outcome with its
        device index (the scheduling kernel charges that device's
        port).  A member whose free-space generation is unchanged since
        this shape last failed on it is skipped outright — the memoed
        rejection is replayed instead of re-running its planner.  When
        every member declines, a failed outcome is returned whose
        ``dominant`` certificate holds only if every member was covered
        and every rejection was itself dominant; a 1-member fleet
        returns exactly what its single manager would.
        """
        outcome: PlacementOutcome | None = None
        dominant = True
        covered: set[int] = set()
        for index in self.policy.order(self, height, width):
            if index in self.lost:
                continue
            member = self.members[index]
            generation = getattr(member.free_space, "generation", None)
            memo = self._member_shape_failed.get((index, height, width))
            if memo is not None and generation is not None \
                    and generation == memo[0]:
                PERF.fleet_member_skips += 1
                dominant = dominant and memo[1]
                covered.add(index)
                if outcome is None:
                    outcome = PlacementOutcome(False, owner)
                continue
            outcome = member.request(height, width, owner)
            if outcome.success:
                outcome.device = index
                assert outcome.rect is not None
                self._owners[owner] = (index, outcome.rect.area)
                self._areas[index] += outcome.rect.area
                self.policy.note_placed(index)
                return outcome
            dominant = dominant and outcome.dominant
            covered.add(index)
            if generation is not None:
                self._member_shape_failed[index, height, width] = (
                    generation, outcome.dominant
                )
        if outcome is None:
            # Every member is lost (or the fleet is empty of survivors):
            # nothing was probed, so the failure is trivially dominant —
            # no smaller footprint could succeed either.
            outcome = PlacementOutcome(False, owner, dominant=True)
            return outcome
        alive = len(self.members) - len(self.lost)
        outcome.dominant = dominant and len(covered) == alive
        return outcome

    def prefetch_admission(self, shapes: list[tuple[int, int]]) -> None:
        """Warm every member's fit/plan caches for one admission pass.

        Forwards the pass's candidate shapes to each member that
        exposes the batched-probe hook
        (:meth:`~repro.core.manager.LogicSpaceManager.prefetch_admission`),
        so multi-device runs keep the same vectorised fast path a
        single-device kernel enjoys.  Purely a cache warmer: the
        per-member ``request`` calls that follow return bit-identical
        outcomes with or without it — the selection policy still probes
        members in its own preference order.
        """
        for index, member in enumerate(self.members):
            if index in self.lost:
                continue
            prefetch = getattr(member, "prefetch_admission", None)
            if prefetch is not None:
                prefetch(shapes)

    def adopt(self, owner: int, device: int, rect) -> None:
        """Re-register a resident placement on member ``device``.

        The checkpoint-restore path (:mod:`repro.service.checkpoint`)
        rebuilds a fleet from serialized state: each running function's
        footprint is re-allocated on the member that hosted it, and the
        owner-routing map and O(1) load counters are made consistent —
        exactly the bookkeeping :meth:`request` performs on a live
        placement, minus the policy consultation.
        """
        self.members[device].fabric.allocate_region(rect, owner)
        self._owners[owner] = (device, rect.area)
        self._areas[device] += rect.area

    def release(self, owner: int) -> None:
        """Free a finished function's footprint on its host member."""
        try:
            index, area = self._owners.pop(owner)
        except KeyError:
            raise KeyError(f"owner {owner} holds no region") from None
        self._areas[index] -= area
        self.members[index].release(owner)

    # -- telemetry -----------------------------------------------------------

    def _site_weighted(self, read) -> float:
        """Site-weighted mean of a per-member telemetry channel (a
        1-member fleet reports its member's value verbatim — no float
        round-trip may perturb the bit-identical proxy)."""
        if len(self.members) == 1:
            return read(self.members[0])
        weighted = 0.0
        sites = 0
        for index, manager in enumerate(self.members):
            if index in self.lost:
                continue
            count = manager.fabric.device.clb_count
            weighted += read(manager) * count
            sites += count
        if sites == 0:
            return 0.0
        return weighted / sites

    def fragmentation(self) -> float:
        """Site-weighted mean fragmentation index over the members."""
        return self._site_weighted(lambda m: m.fragmentation())

    def utilization(self) -> float:
        """Site-weighted mean occupancy over the members."""
        return self._site_weighted(lambda m: m.utilization())
