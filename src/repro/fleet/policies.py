"""Device-selection policies: which fabric receives the next function.

A fleet shards one placement stream across N fabrics, so every
admission needs one extra decision before the single-device machinery
takes over: *which device should this request try first?*  A
:class:`DeviceSelectionPolicy` answers with a full preference order —
the fleet manager attempts member devices in that order until one
accepts — and is notified of every accepted placement so stateful
policies (round-robin) can advance.

Four policies ship, mirroring the classic on-line bin-assignment
heuristics the multi-FPGA scheduling literature evaluates (the
Erlangen run-time reconfiguration line; Al-Wattar et al.'s
floor-plan-prediction framework treats region selection the same way):

* ``first-fit`` — lowest-indexed device whose free-space index admits a
  direct fit; devices needing a rearrangement come last.  The default:
  on a 1-device fleet it degenerates to exactly the single-device
  behaviour (the golden snapshots pin that bit-identically).
* ``round-robin`` — rotate a cursor over the members, spreading load
  without reading any occupancy state at all.
* ``least-loaded`` — ascending allocated-site fraction, read from the
  fleet's O(1) per-device area counters (never from a resident scan).
* ``best-fit`` — among devices admitting a direct fit, the one whose
  *largest free rectangle* is smallest while still adequate: big
  contiguous blocks are preserved on other members for future large
  requests (the 2-D analogue of best-fit bin packing).

Every policy is O(devices) arithmetic per decision on top of the
free-space engine's O(#MERs) fit probes — never O(residents) — which is
what keeps fleet admission cheap (``BENCH_fleet.json`` tracks it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .manager import FleetManager

#: The selection policy used when none is named (single-device
#: degenerate behaviour, pinned by the golden snapshots).
DEFAULT_DEVICE_POLICY = "first-fit"


class DeviceSelectionPolicy(Protocol):
    """Preference order over fleet members for one placement request."""

    name: str

    def order(self, fleet: "FleetManager", height: int,
              width: int) -> list[int]:
        """Member indices in the order placement should be attempted."""
        ...

    def note_placed(self, index: int) -> None:
        """Observe that member ``index`` accepted the last request."""
        ...


class _StatelessPolicy:
    """Shared no-op plumbing for policies that keep no cursor."""

    name = "stateless"

    def note_placed(self, index: int) -> None:
        """Stateless policies ignore placement feedback."""


def _split_by_fit(fleet: "FleetManager", height: int,
                  width: int) -> tuple[list[int], list[int]]:
    """Partition member indices into (direct-fit capable, the rest).

    The probe reads each member's maximal-empty-rectangle index
    (``fits`` is a scan of the MER set, not of residents).  Devices in
    the second list can only accept the request through a rearrangement,
    so the fit-aware policies (``first-fit``, ``best-fit``) order them
    last — a planner run on a fabric that might fit directly elsewhere
    would waste port bandwidth.  The occupancy-blind policies
    (``round-robin``) and the load-ordered one (``least-loaded``)
    deliberately do not consult fit at all: their orderings are their
    contract, even when that sends a rearrangement-only member first.
    """
    fitting: list[int] = []
    rest: list[int] = []
    for index, manager in enumerate(fleet.members):
        if manager.free_space.fits(height, width):
            fitting.append(index)
        else:
            rest.append(index)
    return fitting, rest


class FirstFitPolicy(_StatelessPolicy):
    """Lowest-indexed device with a direct fit; rearrangers last."""

    name = "first-fit"

    def order(self, fleet: "FleetManager", height: int,
              width: int) -> list[int]:
        """Direct-fit members in index order, then the rest."""
        fitting, rest = _split_by_fit(fleet, height, width)
        return fitting + rest


class RoundRobinPolicy:
    """Rotate over the members, blind to occupancy."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def order(self, fleet: "FleetManager", height: int,
              width: int) -> list[int]:
        """The member ring, starting at the cursor."""
        n = len(fleet.members)
        return [(self._cursor + i) % n for i in range(n)]

    def note_placed(self, index: int) -> None:
        """Advance the cursor past the member that accepted."""
        self._cursor = index + 1

    @property
    def cursor(self) -> int:
        """Next member the rotation starts from (for tests)."""
        return self._cursor


class LeastLoadedPolicy(_StatelessPolicy):
    """Ascending utilisation, from the fleet's O(1) area counters."""

    name = "least-loaded"

    def order(self, fleet: "FleetManager", height: int,
              width: int) -> list[int]:
        """Members by allocated-site fraction, ties by index."""
        return sorted(range(len(fleet.members)),
                      key=lambda i: (fleet.load(i), i))


class BestFitPolicy(_StatelessPolicy):
    """Smallest adequate largest-free-rectangle first."""

    name = "best-fit"

    def order(self, fleet: "FleetManager", height: int,
              width: int) -> list[int]:
        """Adequate members by ascending largest-free-rectangle area
        (the tightest device that still hosts the request directly),
        then the rearrangement-only rest in index order."""
        fitting, rest = _split_by_fit(fleet, height, width)
        fitting.sort(
            key=lambda i: (fleet.largest_free_area(i), i)
        )
        return fitting + rest


#: Device-selection policy registry: name -> zero-argument factory.
DEVICE_POLICIES = {
    "first-fit": FirstFitPolicy,
    "round-robin": RoundRobinPolicy,
    "least-loaded": LeastLoadedPolicy,
    "best-fit": BestFitPolicy,
}

#: Valid device-selection policy names, in registry order.
DEVICE_POLICY_NAMES = tuple(DEVICE_POLICIES)


def make_device_policy(
    policy: str | DeviceSelectionPolicy,
) -> DeviceSelectionPolicy:
    """Resolve a policy name (or pass a configured instance through)."""
    if not isinstance(policy, str):
        return policy
    try:
        return DEVICE_POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown device policy {policy!r}; "
            f"choose from {DEVICE_POLICY_NAMES}"
        ) from None
