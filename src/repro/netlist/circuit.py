"""Netlist container: cells, nets, primary I/O, structural validation.

A :class:`Circuit` is deliberately mutable — the whole point of the paper
is that the *live* netlist changes while the system runs (replica cells
appear, nets gain a second parallel driver, the original is detached).
The invariants that must hold at rest (single driver per net, no
combinational loops) are checked by :meth:`validate`; the relocation
engine is allowed to create transient multi-driver nets through the
explicit parallel-driver API, which the simulator monitors for conflicts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.device.clb import CellMode

from .cells import Cell


class NetlistError(RuntimeError):
    """Raised on structural violations (unknown nets, loops, duplicates)."""


@dataclass
class CircuitStats:
    """Size statistics of a circuit, in the shape ITC'99 tables use."""

    inputs: int
    outputs: int
    cells: int
    flip_flops: int
    latches: int
    gated_flip_flops: int
    combinational: int

    @property
    def sequential(self) -> int:
        """All state-holding cells."""
        return self.flip_flops + self.latches


class Circuit:
    """A flat LUT/FF netlist with single-clock synchronous semantics."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.cells: dict[str, Cell] = {}
        #: nets with deliberately paralleled drivers, in driver order —
        #: the first driver is the "original", later ones are replicas.
        self.parallel_drivers: dict[str, list[str]] = {}
        self._topo_cache: list[str] | None = None

    # -- construction -----------------------------------------------------

    def add_input(self, name: str) -> str:
        """Declare a primary input net."""
        if name in self.inputs:
            raise NetlistError(f"duplicate primary input {name!r}")
        if name in self.cells:
            raise NetlistError(f"net {name!r} already driven by a cell")
        self.inputs.append(name)
        self._topo_cache = None
        return name

    def add_cell(self, cell: Cell) -> Cell:
        """Add a cell; its output net must not collide with another driver."""
        if cell.name in self.cells:
            raise NetlistError(f"duplicate cell {cell.name!r}")
        current = self.net_driver_map().get(cell.output)
        if current is not None or cell.output in self.inputs:
            raise NetlistError(
                f"net {cell.output!r} already driven "
                f"(by {current or 'a primary input'!r})"
            )
        self.cells[cell.name] = cell
        self._topo_cache = None
        return cell

    def remove_cell(self, name: str) -> Cell:
        """Remove a cell (relocation detaches the original CLB)."""
        try:
            cell = self.cells.pop(name)
        except KeyError:
            raise NetlistError(f"no cell {name!r}") from None
        for net, drivers in list(self.parallel_drivers.items()):
            if name in drivers:
                drivers.remove(name)
                if len(drivers) <= 1:
                    del self.parallel_drivers[net]
        self._topo_cache = None
        return cell

    def replace_cell(self, cell: Cell) -> Cell:
        """Swap in a rewired version of an existing cell (same name)."""
        if cell.name not in self.cells:
            raise NetlistError(f"no cell {cell.name!r} to replace")
        old = self.cells[cell.name]
        if cell.output != old.output and cell.output in self.net_driver_map():
            raise NetlistError(f"net {cell.output!r} already driven")
        self.cells[cell.name] = cell
        self._topo_cache = None
        return cell

    def set_outputs(self, nets: list[str]) -> None:
        """Declare the primary output nets."""
        self.outputs = list(nets)

    # -- parallel drivers (relocation window) --------------------------------

    def add_parallel_driver(self, net: str, replica_cell: str) -> None:
        """Register ``replica_cell`` as an additional driver of ``net``.

        Models the second phase of the relocation procedure: "the outputs
        of both CLBs are also placed in parallel".  The replica cell keeps
        its private output net; evaluation of ``net`` consults all
        registered drivers and flags any disagreement as a drive conflict.
        """
        if replica_cell not in self.cells:
            raise NetlistError(f"no cell {replica_cell!r}")
        primary = self.net_driver_map().get(net)
        if primary is None:
            raise NetlistError(f"net {net!r} has no primary driver")
        group = self.parallel_drivers.setdefault(net, [primary])
        if replica_cell in group:
            raise NetlistError(f"{replica_cell!r} already parallel on {net!r}")
        group.append(replica_cell)

    def promote_parallel_driver(self, net: str, new_primary: str) -> None:
        """Make ``new_primary`` the sole driver of ``net``.

        Models "disconnect the original CLB outputs": the replica's output
        is renamed onto ``net`` and every other driver in the group is
        detached onto a private dangling net.  The detached cells stay in
        the netlist (their inputs are still paralleled) until the engine
        removes them in the final step.
        """
        group = self.parallel_drivers.get(net)
        if not group or new_primary not in group:
            raise NetlistError(f"{new_primary!r} is not parallel on {net!r}")
        for driver in group:
            if driver == new_primary:
                continue
            old = self.cells[driver]
            if old.output == net:
                self.cells[driver] = old.rewired(output=f"{driver}~detached")
        del self.parallel_drivers[net]
        replica = self.cells[new_primary]
        self.cells[new_primary] = replica.rewired(output=net)
        self._topo_cache = None

    # -- queries ---------------------------------------------------------------

    def net_driver_map(self) -> dict[str, str]:
        """Map of net name to primary driving cell name."""
        drivers: dict[str, str] = {}
        for cell in self.cells.values():
            if cell.output in self.parallel_drivers:
                drivers[cell.output] = self.parallel_drivers[cell.output][0]
            else:
                drivers.setdefault(cell.output, cell.name)
        return drivers

    def all_nets(self) -> set[str]:
        """Every net name referenced anywhere in the circuit."""
        nets: set[str] = set(self.inputs) | set(self.outputs)
        for cell in self.cells.values():
            nets.add(cell.output)
            nets.update(cell.fanin)
        return nets

    def fanout(self, net: str) -> list[str]:
        """Cells that observe ``net`` on any input."""
        return [c.name for c in self.cells.values() if net in c.fanin]

    def stats(self) -> CircuitStats:
        """Size statistics in the ITC'99 table shape."""
        ff = sum(
            1 for c in self.cells.values() if c.mode is CellMode.FF_FREE_CLOCK
        )
        gated = sum(
            1 for c in self.cells.values() if c.mode is CellMode.FF_GATED_CLOCK
        )
        latches = sum(1 for c in self.cells.values() if c.mode is CellMode.LATCH)
        comb = sum(1 for c in self.cells.values() if not c.sequential)
        return CircuitStats(
            inputs=len(self.inputs),
            outputs=len(self.outputs),
            cells=len(self.cells),
            flip_flops=ff + gated,
            latches=latches,
            gated_flip_flops=gated,
            combinational=comb,
        )

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises :class:`NetlistError`.

        * every net referenced by a cell or output has a driver,
        * no net has two drivers outside a declared parallel group,
        * the combinational subgraph is acyclic.
        """
        driven: dict[str, str] = {}
        for name in self.inputs:
            driven[name] = "<input>"
        for cell in self.cells.values():
            group = self.parallel_drivers.get(cell.output)
            if cell.output in driven and (group is None or cell.name not in group):
                raise NetlistError(
                    f"net {cell.output!r} multiply driven by "
                    f"{driven[cell.output]!r} and {cell.name!r}"
                )
            driven.setdefault(cell.output, cell.name)
        for cell in self.cells.values():
            for net in cell.fanin:
                if net not in driven:
                    raise NetlistError(
                        f"cell {cell.name!r} reads undriven net {net!r}"
                    )
        for net in self.outputs:
            if net not in driven:
                raise NetlistError(f"primary output {net!r} is undriven")
        self.topo_order()  # raises on combinational loops

    def topo_order(self) -> list[str]:
        """Topological order of the *combinational* cells.

        Sequential cells act as sources (their outputs are registered) and
        sinks (their D/CE inputs are consumed at the clock edge), so they
        never participate in a combinational cycle by construction; a
        cycle through combinational cells only is an error.  Transparent
        latches are treated as combinational for ordering purposes but may
        legally form cycles *through* their hold state; the simulator
        relaxes them iteratively, so latches are excluded from the
        acyclicity check as well.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        comb = {
            name: cell
            for name, cell in self.cells.items()
            if cell.mode is CellMode.COMBINATIONAL
            or cell.mode is CellMode.LUT_RAM
        }
        producers: dict[str, list[str]] = {}
        for name, cell in comb.items():
            producers.setdefault(cell.output, []).append(name)
        indegree = {name: 0 for name in comb}
        consumers: dict[str, list[str]] = {name: [] for name in comb}
        for name, cell in comb.items():
            for net in cell.fanin:
                for producer in producers.get(net, ()):
                    indegree[name] += 1
                    consumers[producer].append(name)
        queue = deque(sorted(n for n, d in indegree.items() if d == 0))
        order: list[str] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for nxt in consumers[node]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    queue.append(nxt)
        if len(order) != len(comb):
            stuck = sorted(n for n, d in indegree.items() if d > 0)
            raise NetlistError(f"combinational loop through {stuck[:6]} ...")
        self._topo_cache = order
        return order

    def clone(self, name: str | None = None) -> "Circuit":
        """A structurally identical copy (cells are immutable and shared).

        Used to build the golden reference for lockstep transparency
        checking: the copy is never relocated while the original mutates.
        """
        other = Circuit(name or self.name)
        other.inputs = list(self.inputs)
        other.outputs = list(self.outputs)
        other.cells = dict(self.cells)
        other.parallel_drivers = {
            net: list(drivers) for net, drivers in self.parallel_drivers.items()
        }
        return other

    def __str__(self) -> str:
        s = self.stats()
        return (
            f"<circuit {self.name}: {s.inputs} in, {s.outputs} out, "
            f"{s.cells} cells ({s.flip_flops} FF, {s.latches} latch)>"
        )
