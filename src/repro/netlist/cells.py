"""Logic-cell primitives for the netlist substrate.

A cell mirrors the Virtex logic cell the paper relocates: a 4-input LUT
feeding an optional storage element (edge-triggered FF with clock enable,
or a transparent latch).  Cells drive exactly one net; by default the net
carries the cell's name.  During a relocation the engine may register a
*second* driver on a net ("the outputs of both CLBs are also placed in
parallel") — the simulator then checks both drivers agree, which is the
machine-checkable version of the paper's glitch-free observation.

Truth tables are 16-bit integers, LSB-first: bit ``i`` holds the output
for the input vector whose bit 0 is input 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.device.clb import CellMode

#: Common truth tables (input 0 is the LSB of the LUT address).
LUT_BUF = 0xAAAA       # out = i0
LUT_NOT = 0x5555       # out = !i0
LUT_AND2 = 0x8888      # out = i0 & i1
LUT_OR2 = 0xEEEE       # out = i0 | i1
LUT_XOR2 = 0x6666      # out = i0 ^ i1
LUT_NAND2 = 0x7777     # out = !(i0 & i1)
LUT_NOR2 = 0x1111      # out = !(i0 | i1)
LUT_XNOR2 = 0x9999     # out = !(i0 ^ i1)
LUT_MUX21 = 0xCACA     # out = i2 ? i1 : i0
LUT_AND3 = 0x8080      # out = i0 & i1 & i2
LUT_OR3 = 0xFEFE       # out = i0 | i1 | i2
LUT_XOR3 = 0x9696      # out = i0 ^ i1 ^ i2
LUT_MAJ3 = 0xE8E8      # out = majority(i0, i1, i2)
LUT_CONST0 = 0x0000
LUT_CONST1 = 0xFFFF


def lut_eval(table: int, inputs: tuple[int, ...]) -> int:
    """Evaluate a LUT truth table for an input vector (missing inputs 0)."""
    address = 0
    for i, bit in enumerate(inputs[:4]):
        address |= (bit & 1) << i
    return (table >> address) & 1


@dataclass(frozen=True)
class Cell:
    """One logic cell of a netlist.

    ``inputs`` name the nets feeding the LUT (up to 4).  For sequential
    modes the LUT output feeds the storage element; the cell's output net
    then carries the *registered* value.  ``ce`` names the clock-enable
    net for :attr:`CellMode.FF_GATED_CLOCK` cells and the latch gate for
    :attr:`CellMode.LATCH` cells; it must be ``None`` otherwise.
    """

    name: str
    lut: int
    inputs: tuple[str, ...]
    mode: CellMode = CellMode.COMBINATIONAL
    ce: str | None = None
    output: str = ""
    init_state: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("cell needs a non-empty name")
        if not 0 <= self.lut <= 0xFFFF:
            raise ValueError(f"{self.name}: LUT table out of 16-bit range")
        if len(self.inputs) > 4:
            raise ValueError(f"{self.name}: a logic cell has at most 4 inputs")
        needs_ce = self.mode in (CellMode.FF_GATED_CLOCK, CellMode.LATCH)
        if needs_ce and self.ce is None:
            raise ValueError(f"{self.name}: mode {self.mode.value} needs a ce net")
        if not needs_ce and self.ce is not None:
            raise ValueError(f"{self.name}: mode {self.mode.value} takes no ce net")
        if self.init_state not in (0, 1):
            raise ValueError(f"{self.name}: init_state must be 0 or 1")
        if not self.output:
            object.__setattr__(self, "output", self.name)

    @property
    def sequential(self) -> bool:
        """True when the cell holds state across clock edges."""
        return self.mode.sequential

    @property
    def fanin(self) -> tuple[str, ...]:
        """All nets this cell observes (LUT inputs plus CE)."""
        if self.ce is None:
            return self.inputs
        return self.inputs + (self.ce,)

    def evaluate_lut(self, values: tuple[int, ...]) -> int:
        """Combinational output of the LUT for the given input values."""
        return lut_eval(self.lut, values)

    def renamed(self, name: str, output: str | None = None) -> "Cell":
        """A copy with a new name (used to create replica cells)."""
        return replace(self, name=name, output=output or name)

    def rewired(self, **changes: object) -> "Cell":
        """A copy with selected fields replaced (relocation rewiring)."""
        return replace(self, **changes)  # type: ignore[arg-type]


def mux21(name: str, a: str, b: str, sel: str, output: str = "") -> Cell:
    """The 2:1 multiplexer of the auxiliary relocation circuit:
    ``out = sel ? b : a`` (paper, Fig. 3)."""
    return Cell(name, LUT_MUX21, (a, b, sel), output=output or name)


def or2(name: str, a: str, b: str, output: str = "") -> Cell:
    """The OR gate of the auxiliary relocation circuit (paper, Fig. 3)."""
    return Cell(name, LUT_OR2, (a, b), output=output or name)
