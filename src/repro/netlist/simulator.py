"""Cycle-accurate event simulation of live netlists.

This simulator is the measurement instrument of the reproduction: where
the paper's authors watched a Virtex XCV200 with an oscilloscope and
reported "no loss of information or functional disturbance", we run the
circuit cycle by cycle while the relocation engine rewires it, and check:

* **drive conflicts** — whenever a net has paralleled drivers (original
  and replica CLB outputs), all drivers must agree each cycle; the
  machine-checkable version of "to avoid output glitches, both CLBs must
  remain in parallel for at least one clock cycle" with stable replica
  outputs;
* **lockstep equivalence** — a golden (never-relocated) copy of the
  circuit fed the same stimulus must produce identical outputs every
  cycle (:class:`LockstepChecker`).

Semantics: single-clock synchronous circuits.  One :meth:`CycleSimulator.step`
applies primary inputs, settles the combinational network (including
transparent latches, relaxed to fixpoint), samples D/CE, performs the
clock edge on all flip-flops simultaneously, and re-settles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.device.clb import CellMode

from .circuit import Circuit, NetlistError

#: Maximum settle passes before declaring oscillation.
MAX_SETTLE_PASSES = 32


class SimulationError(RuntimeError):
    """Raised on unresolvable simulation conditions (oscillation, etc.)."""


@dataclass(frozen=True)
class DriveConflict:
    """Paralleled drivers disagreed on a net — an output glitch on silicon."""

    cycle: int
    net: str
    values: tuple[tuple[str, int], ...]

    def __str__(self) -> str:
        vals = ", ".join(f"{d}={v}" for d, v in self.values)
        return f"cycle {self.cycle}: net {self.net!r} conflict ({vals})"


class CycleSimulator:
    """Simulates one :class:`~repro.netlist.circuit.Circuit` cycle by cycle.

    The circuit may be mutated between (not during) ``step`` calls; the
    simulator re-reads structure every step, which is exactly what
    dynamic reconfiguration does to the silicon.
    """

    def __init__(self, circuit: Circuit, strict: bool = False) -> None:
        self.circuit = circuit
        #: storage-element contents, keyed by cell name.
        self.state: dict[str, int] = {
            name: cell.init_state
            for name, cell in circuit.cells.items()
            if cell.sequential
        }
        #: settled value of every net.
        self.net_values: dict[str, int] = {}
        #: per-cell computed output values (pre-net resolution).
        self.cell_out: dict[str, int] = {}
        self.cycle = 0
        self.conflicts: list[DriveConflict] = []
        self.strict = strict
        self._pi_values: dict[str, int] = {name: 0 for name in circuit.inputs}
        self._settle()

    # -- net resolution -----------------------------------------------------

    def _net(self, net: str) -> int:
        """Current value of a net (defaults to 0 before first drive)."""
        if net in self._pi_values:
            return self._pi_values[net]
        return self.net_values.get(net, 0)

    def _resolve_net(self, cell_name: str, net: str) -> None:
        """Publish a cell's output onto its net, honouring parallel groups."""
        group = self.circuit.parallel_drivers.get(net)
        if group is None:
            self.net_values[net] = self.cell_out[cell_name]
        else:
            primary = group[0]
            if primary in self.cell_out:
                self.net_values[net] = self.cell_out[primary]

    # -- settling -----------------------------------------------------------

    def _settle(self) -> None:
        """Relax combinational cells and transparent latches to fixpoint."""
        circuit = self.circuit
        order = circuit.topo_order()
        latches = [
            c for c in circuit.cells.values() if c.mode is CellMode.LATCH
        ]
        # Sequential outputs are sources: publish states first.
        for name, value in self.state.items():
            cell = circuit.cells.get(name)
            if cell is None:
                continue
            self.cell_out[name] = value
            self._resolve_net(name, cell.output)
        for _ in range(MAX_SETTLE_PASSES):
            changed = False
            for name in order:
                cell = circuit.cells[name]
                value = cell.evaluate_lut(tuple(self._net(n) for n in cell.inputs))
                if self.cell_out.get(name) != value:
                    self.cell_out[name] = value
                    changed = True
                self._resolve_net(name, cell.output)
            for cell in latches:
                gate = self._net(cell.ce)  # type: ignore[arg-type]
                if gate:
                    value = cell.evaluate_lut(
                        tuple(self._net(n) for n in cell.inputs)
                    )
                    if self.state.get(cell.name) != value:
                        self.state[cell.name] = value
                        changed = True
                self.cell_out[cell.name] = self.state.get(cell.name, 0)
                self._resolve_net(cell.name, cell.output)
            if not changed:
                break
        else:
            raise SimulationError(
                f"{circuit.name}: nets did not settle after "
                f"{MAX_SETTLE_PASSES} passes (oscillating latch loop?)"
            )
        self._check_conflicts()

    def _check_conflicts(self) -> None:
        """Record any disagreement among paralleled drivers."""
        for net, drivers in self.circuit.parallel_drivers.items():
            seen = [(d, self.cell_out.get(d, 0)) for d in drivers]
            if len({v for _, v in seen}) > 1:
                conflict = DriveConflict(self.cycle, net, tuple(seen))
                self.conflicts.append(conflict)
                if self.strict:
                    raise SimulationError(str(conflict))

    # -- stepping ------------------------------------------------------------

    def step(self, inputs: dict[str, int] | None = None) -> dict[str, int]:
        """Advance one clock cycle; returns the settled output values.

        ``inputs`` updates any subset of the primary inputs (missing ones
        hold their previous values, matching registered stimulus).
        """
        if inputs:
            for name, value in inputs.items():
                if name not in self._pi_values:
                    raise NetlistError(f"unknown primary input {name!r}")
                self._pi_values[name] = value & 1
        self._settle()
        # Sample D and CE for every flip-flop, then update simultaneously.
        updates: dict[str, int] = {}
        for name, cell in self.circuit.cells.items():
            if cell.mode is CellMode.FF_FREE_CLOCK:
                enabled = True
            elif cell.mode is CellMode.FF_GATED_CLOCK:
                enabled = bool(self._net(cell.ce))  # type: ignore[arg-type]
            else:
                continue
            if enabled:
                updates[name] = cell.evaluate_lut(
                    tuple(self._net(n) for n in cell.inputs)
                )
        self.state.update(updates)
        self.cycle += 1
        self._settle()
        return self.outputs()

    def run(self, vectors: list[dict[str, int]]) -> list[dict[str, int]]:
        """Apply a list of input vectors; returns the output trace."""
        return [self.step(v) for v in vectors]

    def outputs(self) -> dict[str, int]:
        """Settled values of the primary outputs."""
        return {net: self._net(net) for net in self.circuit.outputs}

    # -- state management ------------------------------------------------------

    def probe(self, net: str) -> int:
        """Observe any net's settled value (test instrumentation)."""
        return self._net(net)

    def cell_state(self, name: str) -> int:
        """Storage-element content of a sequential cell."""
        try:
            return self.state[name]
        except KeyError:
            raise NetlistError(f"cell {name!r} holds no state") from None

    def seed_state(self, name: str, value: int) -> None:
        """Force a storage element's content (test setup only)."""
        self.state[name] = value & 1
        self._settle()

    def rename_state(self, old: str, new: str) -> None:
        """Carry a storage element across a cell rename.

        Used by the relocation engine when the promoted replica takes
        over the original cell's name; the *value* was acquired through
        simulated circuit behaviour, only the registry key moves.
        """
        if old in self.state:
            self.state[new] = self.state.pop(old)
        if old in self.cell_out:
            self.cell_out[new] = self.cell_out.pop(old)

    def forget_cell(self, name: str) -> None:
        """Drop per-cell records after the engine removes a cell."""
        self.state.pop(name, None)
        self.cell_out.pop(name, None)

    def snapshot(self) -> dict[str, int]:
        """Copy of all storage-element contents."""
        return dict(self.state)


class LockstepChecker:
    """Runs a device-under-test simulator against a golden reference.

    The golden circuit is a structural copy that is never relocated; both
    receive identical stimulus.  Any output mismatch or drive conflict in
    the DUT is recorded — the paper's claim is that there are none.
    """

    def __init__(self, dut: CycleSimulator, golden: CycleSimulator) -> None:
        if dut.circuit.outputs != golden.circuit.outputs:
            raise NetlistError("lockstep circuits expose different outputs")
        self.dut = dut
        self.golden = golden
        self.mismatches: list[tuple[int, str, int, int]] = []

    def step(self, inputs: dict[str, int] | None = None) -> dict[str, int]:
        """Advance both simulators one cycle and compare outputs."""
        got = self.dut.step(inputs)
        want = self.golden.step(inputs)
        for net, value in want.items():
            if got[net] != value:
                self.mismatches.append((self.dut.cycle, net, got[net], value))
        return got

    @property
    def clean(self) -> bool:
        """True when no mismatch and no drive conflict has occurred."""
        return not self.mismatches and not self.dut.conflicts
