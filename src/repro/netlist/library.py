"""A library of small canonical circuits used by tests and examples.

These are the controlled payloads for relocation experiments: their
behaviour is predictable in closed form, so any disturbance introduced by
a relocation is immediately visible.  All are single-clock synchronous
(or latch-based for the asynchronous case), like the paper's test
circuits.
"""

from __future__ import annotations

from repro.device.clb import CellMode

from .cells import (
    Cell,
    LUT_AND2,
    LUT_AND3,
    LUT_BUF,
    LUT_NOT,
    LUT_XOR2,
)
from .circuit import Circuit


def toggle(name: str = "toggle") -> Circuit:
    """A single free-running toggle flip-flop: q <= not q."""
    circuit = Circuit(name)
    circuit.add_cell(
        Cell("q", LUT_NOT, ("q",), mode=CellMode.FF_FREE_CLOCK)
    )
    circuit.set_outputs(["q"])
    circuit.validate()
    return circuit


def counter(bits: int, name: str = "counter") -> Circuit:
    """A free-running binary counter.

    Bit 0 toggles every cycle; bit *i* toggles when all lower bits are 1,
    via an AND-carry chain of combinational cells.
    """
    if not 1 <= bits <= 16:
        raise ValueError("counter supports 1..16 bits")
    circuit = Circuit(name)
    circuit.add_cell(Cell("b0", LUT_NOT, ("b0",), mode=CellMode.FF_FREE_CLOCK))
    carry = "b0"
    for i in range(1, bits):
        if i >= 2:
            and_cell = Cell(f"c{i}", LUT_AND2, (carry, f"b{i - 1}"))
            circuit.add_cell(and_cell)
            carry = and_cell.output
        circuit.add_cell(
            Cell(f"b{i}", LUT_XOR2, (f"b{i}", carry), mode=CellMode.FF_FREE_CLOCK)
        )
    circuit.set_outputs([f"b{i}" for i in range(bits)])
    circuit.validate()
    return circuit


def counter_value(sim_outputs: dict[str, int]) -> int:
    """Decode a counter's output dict into its integer value."""
    value = 0
    for net, bit in sim_outputs.items():
        if net.startswith("b") and net[1:].isdigit():
            value |= (bit & 1) << int(net[1:])
    return value


def gated_counter(bits: int, name: str = "gated_counter") -> Circuit:
    """A counter whose flip-flops are clock-enabled by input ``en``.

    This is the paper's problem case: "input acquisition by the FFs is
    controlled by the state of the clock enable signal (CE)" — a naive
    relocation copy loses state whenever CE is low (section 2).
    """
    if not 1 <= bits <= 16:
        raise ValueError("gated_counter supports 1..16 bits")
    circuit = Circuit(name)
    en = circuit.add_input("en")
    circuit.add_cell(
        Cell("b0", LUT_NOT, ("b0",), mode=CellMode.FF_GATED_CLOCK, ce=en)
    )
    carry = "b0"
    for i in range(1, bits):
        if i >= 2:
            and_cell = Cell(f"c{i}", LUT_AND2, (carry, f"b{i - 1}"))
            circuit.add_cell(and_cell)
            carry = and_cell.output
        circuit.add_cell(
            Cell(
                f"b{i}",
                LUT_XOR2,
                (f"b{i}", carry),
                mode=CellMode.FF_GATED_CLOCK,
                ce=en,
            )
        )
    circuit.set_outputs([f"b{i}" for i in range(bits)])
    circuit.validate()
    return circuit


def shift_register(stages: int, name: str = "shift",
                   gated: bool = False) -> Circuit:
    """A serial shift register with input ``din`` (and ``en`` if gated)."""
    if stages < 1:
        raise ValueError("shift register needs at least one stage")
    circuit = Circuit(name)
    din = circuit.add_input("din")
    en = circuit.add_input("en") if gated else None
    mode = CellMode.FF_GATED_CLOCK if gated else CellMode.FF_FREE_CLOCK
    previous = din
    for i in range(stages):
        cell = Cell(f"s{i}", LUT_BUF, (previous,), mode=mode, ce=en)
        circuit.add_cell(cell)
        previous = cell.output
    circuit.set_outputs([previous])
    circuit.validate()
    return circuit


def lfsr4(name: str = "lfsr4") -> Circuit:
    """A 4-bit maximal-length LFSR (taps 4,3), seeded non-zero.

    Period 15; a strong state-coherency canary because one lost update
    desynchronises the whole remaining sequence.
    """
    circuit = Circuit(name)
    circuit.add_cell(
        Cell("fb", LUT_XOR2, ("r3", "r2"))
    )
    taps = ["fb", "r0", "r1", "r2"]
    for i in range(4):
        circuit.add_cell(
            Cell(
                f"r{i}",
                LUT_BUF,
                (taps[i],),
                mode=CellMode.FF_FREE_CLOCK,
                init_state=1 if i == 0 else 0,
            )
        )
    circuit.set_outputs(["r3"])
    circuit.validate()
    return circuit


def latch_pipeline(stages: int, name: str = "latch_pipe") -> Circuit:
    """A chain of transparent latches sharing gate ``g`` — the paper's
    asynchronous implementation case (section 2, last paragraph)."""
    if stages < 1:
        raise ValueError("latch pipeline needs at least one stage")
    circuit = Circuit(name)
    din = circuit.add_input("din")
    gate = circuit.add_input("g")
    previous = din
    for i in range(stages):
        cell = Cell(f"l{i}", LUT_BUF, (previous,), mode=CellMode.LATCH, ce=gate)
        circuit.add_cell(cell)
        previous = cell.output
    circuit.set_outputs([previous])
    circuit.validate()
    return circuit


def majority_voter(name: str = "voter") -> Circuit:
    """A purely combinational 3-input majority voter."""
    circuit = Circuit(name)
    a = circuit.add_input("a")
    b = circuit.add_input("b")
    c = circuit.add_input("c")
    circuit.add_cell(Cell("ab", LUT_AND2, (a, b)))
    circuit.add_cell(Cell("bc", LUT_AND2, (b, c)))
    circuit.add_cell(Cell("ac", LUT_AND2, (a, c)))
    circuit.add_cell(
        Cell("vote", 0xFEFE, ("ab", "bc", "ac"))  # 3-input OR
    )
    circuit.set_outputs(["vote"])
    circuit.validate()
    return circuit


def johnson_counter(stages: int, name: str = "johnson") -> Circuit:
    """A Johnson (twisted-ring) counter: period 2*stages, free-running."""
    if stages < 2:
        raise ValueError("johnson counter needs at least two stages")
    circuit = Circuit(name)
    circuit.add_cell(
        Cell("j0", LUT_NOT, (f"j{stages - 1}",), mode=CellMode.FF_FREE_CLOCK)
    )
    for i in range(1, stages):
        circuit.add_cell(
            Cell(f"j{i}", LUT_BUF, (f"j{i - 1}",),
                 mode=CellMode.FF_FREE_CLOCK)
        )
    circuit.set_outputs([f"j{i}" for i in range(stages)])
    circuit.validate()
    return circuit


def parity_chain(width: int, name: str = "parity") -> Circuit:
    """A purely combinational XOR reduction over ``width`` inputs."""
    if width < 2:
        raise ValueError("parity chain needs at least two inputs")
    circuit = Circuit(name)
    inputs = [circuit.add_input(f"x{i}") for i in range(width)]
    previous = inputs[0]
    for i in range(1, width):
        cell = Cell(f"p{i}", LUT_XOR2, (previous, inputs[i]))
        circuit.add_cell(cell)
        previous = cell.output
    circuit.set_outputs([previous])
    circuit.validate()
    return circuit


def accumulator(bits: int, name: str = "accum") -> Circuit:
    """A gated accumulator: adds input ``d<i>`` into a register when
    ``en`` is high (ripple-carry built from XOR/AND cells)."""
    if not 1 <= bits <= 8:
        raise ValueError("accumulator supports 1..8 bits")
    circuit = Circuit(name)
    en = circuit.add_input("en")
    data = [circuit.add_input(f"d{i}") for i in range(bits)]
    carry: str | None = None
    for i in range(bits):
        if carry is None:
            # sum0 = a0 ^ d0; carry1 = a0 & d0
            circuit.add_cell(
                Cell(
                    f"a{i}",
                    LUT_XOR2,
                    (f"a{i}", data[i]),
                    mode=CellMode.FF_GATED_CLOCK,
                    ce=en,
                )
            )
            carry_cell = Cell(f"cy{i}", LUT_AND2, (f"a{i}", data[i]))
        else:
            # sum = a ^ d ^ carry; next carry = majority(a, d, carry)
            circuit.add_cell(
                Cell(
                    f"a{i}",
                    0x9696,  # 3-input XOR
                    (f"a{i}", data[i], carry),
                    mode=CellMode.FF_GATED_CLOCK,
                    ce=en,
                )
            )
            carry_cell = Cell(
                f"cy{i}", 0xE8E8, (f"a{i}", data[i], carry)  # majority
            )
        if i < bits - 1:
            circuit.add_cell(carry_cell)
            carry = carry_cell.output
    circuit.set_outputs([f"a{i}" for i in range(bits)])
    circuit.validate()
    return circuit


def accumulator_value(outputs: dict[str, int]) -> int:
    """Decode an accumulator's register outputs into an integer."""
    value = 0
    for net, bit in outputs.items():
        if net.startswith("a") and net[1:].isdigit():
            value |= (bit & 1) << int(net[1:])
    return value


def moore_fsm(name: str = "fsm") -> Circuit:
    """A 2-bit Moore FSM (gray-coded cycle 00 -> 01 -> 11 -> 10) with an
    ``advance`` input gating the transitions via clock enable."""
    circuit = Circuit(name)
    adv = circuit.add_input("advance")
    # Next-state logic for gray cycle: s1' = s0, s0' = not s1.
    circuit.add_cell(
        Cell(
            "s0",
            LUT_NOT,
            ("s1",),
            mode=CellMode.FF_GATED_CLOCK,
            ce=adv,
        )
    )
    circuit.add_cell(
        Cell(
            "s1",
            LUT_BUF,
            ("s0",),
            mode=CellMode.FF_GATED_CLOCK,
            ce=adv,
        )
    )
    circuit.add_cell(Cell("in_state3", LUT_AND2, ("s0", "s1")))
    circuit.set_outputs(["s0", "s1", "in_state3"])
    circuit.validate()
    return circuit
