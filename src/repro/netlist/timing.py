"""Timed waveform analysis for paralleled interconnections (Fig. 6).

Section 3 of the paper analyses what happens while an original path and
its replica are paralleled during routing relocation:

    "Since different paths are used while paralleling the original and
    replica interconnections, each of them will have a different
    propagation delay.  This means that if the signal level at the output
    of the CLB source changes, the signal at the input of the CLB
    destination will show an interval of fuzziness ... Nevertheless, and
    for transient analysis, the propagation delay associated to the
    parallel interconnections shall be the longer of the two paths."

This module reproduces that analysis exactly: a source waveform is
propagated down both paths; whenever the two arrivals disagree, the sink
sees an undefined ("fuzzy") interval; the effective propagation delay of
the paralleled pair is ``max(d_original, d_replica)``.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field

#: Value used for intervals where paralleled arrivals disagree.
FUZZY = "X"


@dataclass(frozen=True)
class Transition:
    """One signal edge: the value that holds from ``time`` onwards."""

    time: float
    value: int


class Waveform:
    """A piecewise-constant binary signal.

    Built from an initial value and a chronologically sorted list of
    transitions; redundant transitions (to the current value) are dropped.
    """

    def __init__(self, initial: int = 0,
                 transitions: list[Transition] | None = None) -> None:
        self.initial = initial & 1
        self.transitions: list[Transition] = []
        self._times: list[float] = []
        last = self.initial
        for tr in sorted(transitions or [], key=lambda t: t.time):
            value = tr.value & 1
            if value != last:
                self.transitions.append(Transition(tr.time, value))
                self._times.append(tr.time)
                last = value

    def value_at(self, time: float) -> int:
        """Signal value at ``time`` (transitions take effect at their time)."""
        idx = bisect_right(self._times, time)
        if idx == 0:
            return self.initial
        return self.transitions[idx - 1].value

    def delayed(self, delay: float) -> "Waveform":
        """The same signal after a pure transport delay."""
        if delay < 0:
            raise ValueError("propagation delay cannot be negative")
        return Waveform(
            self.initial,
            [Transition(t.time + delay, t.value) for t in self.transitions],
        )

    def edge_times(self) -> list[float]:
        """Times of all transitions."""
        return list(self._times)

    def __len__(self) -> int:
        return len(self.transitions)


@dataclass
class FuzzInterval:
    """A time span during which the sink value is undefined."""

    start: float
    end: float

    @property
    def length(self) -> float:
        """Duration of the undefined span."""
        return self.end - self.start


@dataclass
class ParallelPathReport:
    """Result of merging the original and replica path arrivals."""

    delay_original: float
    delay_replica: float
    fuzz_intervals: list[FuzzInterval] = field(default_factory=list)
    sink_waveform: Waveform | None = None

    @property
    def effective_delay(self) -> float:
        """The delay to use for transient analysis: the longer path."""
        return max(self.delay_original, self.delay_replica)

    @property
    def fuzz_per_edge(self) -> float:
        """The fuzziness each source edge contributes: the delay mismatch."""
        return abs(self.delay_original - self.delay_replica)

    @property
    def total_fuzz(self) -> float:
        """Accumulated undefined time at the sink."""
        return sum(i.length for i in self.fuzz_intervals)

    def max_safe_clock_hz(self, setup: float = 0.0) -> float:
        """Highest clock whose period covers the effective delay + setup.

        During the parallel interval the design must be timed against the
        longer path; this is the frequency ceiling that implies.
        """
        period = self.effective_delay + setup
        if period <= 0:
            return math.inf
        return 1.0 / period


def merge_parallel_paths(source: Waveform, delay_original: float,
                         delay_replica: float) -> ParallelPathReport:
    """Compute the sink view of a source driven through two paralleled paths.

    The sink sees each arrival; where they disagree the value is fuzzy.
    Returns the fuzz intervals and the resolved sink waveform (which
    changes value only once both arrivals agree — the conservative read).
    """
    a = source.delayed(delay_original)
    b = source.delayed(delay_replica)
    events = sorted(set(a.edge_times()) | set(b.edge_times()))
    report = ParallelPathReport(delay_original, delay_replica)
    resolved: list[Transition] = []
    fuzz_start: float | None = None
    initial = a.value_at(-math.inf) & b.value_at(-math.inf)
    for t in events:
        va, vb = a.value_at(t), b.value_at(t)
        if va == vb:
            if fuzz_start is not None:
                report.fuzz_intervals.append(FuzzInterval(fuzz_start, t))
                fuzz_start = None
            resolved.append(Transition(t, va))
        else:
            if fuzz_start is None:
                fuzz_start = t
    if fuzz_start is not None:
        # The source never settled; close the interval at the last event.
        report.fuzz_intervals.append(
            FuzzInterval(fuzz_start, events[-1] if events else fuzz_start)
        )
    report.sink_waveform = Waveform(initial, resolved)
    return report


def square_wave(period: float, edges: int, initial: int = 0) -> Waveform:
    """A square wave with ``edges`` transitions, half-period spacing."""
    if period <= 0:
        raise ValueError("period must be positive")
    half = period / 2.0
    value = initial
    transitions = []
    for k in range(1, edges + 1):
        value ^= 1
        transitions.append(Transition(k * half, value))
    return Waveform(initial, transitions)
