"""Plain-text netlist serialisation (the ``.rnl`` format).

A downstream user of the library needs to move circuits in and out of
it; this module defines a minimal line-oriented format in the spirit of
BLIF, covering exactly the cell model of ``repro.netlist``:

    # comment
    .circuit NAME
    .inputs a b c
    .outputs q
    .cell NAME lut=0xCAFE inputs=a,b mode=ff-gated-clock ce=en init=1 [out=NET]
    .end

Round-trip fidelity is exact: ``loads(dumps(circuit))`` reproduces every
cell field, the I/O lists and the declaration order.
"""

from __future__ import annotations

from repro.device.clb import CellMode

from .cells import Cell
from .circuit import Circuit, NetlistError


class NetlistFormatError(ValueError):
    """Raised on malformed ``.rnl`` input."""


def dumps(circuit: Circuit) -> str:
    """Serialise a circuit to the ``.rnl`` text format."""
    lines = [f".circuit {circuit.name}"]
    if circuit.inputs:
        lines.append(".inputs " + " ".join(circuit.inputs))
    if circuit.outputs:
        lines.append(".outputs " + " ".join(circuit.outputs))
    for cell in circuit.cells.values():
        parts = [
            f".cell {cell.name}",
            f"lut=0x{cell.lut:04X}",
            "inputs=" + ",".join(cell.inputs),
            f"mode={cell.mode.value}",
        ]
        if cell.ce is not None:
            parts.append(f"ce={cell.ce}")
        if cell.init_state:
            parts.append(f"init={cell.init_state}")
        if cell.output != cell.name:
            parts.append(f"out={cell.output}")
        lines.append(" ".join(parts))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def loads(text: str) -> Circuit:
    """Parse a circuit from the ``.rnl`` text format."""
    circuit: Circuit | None = None
    ended = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if ended:
            raise NetlistFormatError(
                f"line {lineno}: content after .end"
            )
        tokens = line.split()
        keyword = tokens[0]
        if keyword == ".circuit":
            if circuit is not None:
                raise NetlistFormatError(f"line {lineno}: duplicate .circuit")
            if len(tokens) != 2:
                raise NetlistFormatError(f"line {lineno}: .circuit NAME")
            circuit = Circuit(tokens[1])
            continue
        if circuit is None:
            raise NetlistFormatError(
                f"line {lineno}: {keyword} before .circuit"
            )
        if keyword == ".inputs":
            for name in tokens[1:]:
                circuit.add_input(name)
        elif keyword == ".outputs":
            circuit.set_outputs(tokens[1:])
        elif keyword == ".cell":
            circuit.add_cell(_parse_cell(tokens, lineno))
        elif keyword == ".end":
            ended = True
        else:
            raise NetlistFormatError(
                f"line {lineno}: unknown directive {keyword!r}"
            )
    if circuit is None:
        raise NetlistFormatError("no .circuit directive found")
    if not ended:
        raise NetlistFormatError("missing .end directive")
    try:
        circuit.validate()
    except NetlistError as exc:
        raise NetlistFormatError(f"invalid netlist: {exc}") from exc
    return circuit


def _parse_cell(tokens: list[str], lineno: int) -> Cell:
    if len(tokens) < 3:
        raise NetlistFormatError(f"line {lineno}: .cell NAME key=value ...")
    name = tokens[1]
    fields: dict[str, str] = {}
    for token in tokens[2:]:
        if "=" not in token:
            raise NetlistFormatError(
                f"line {lineno}: expected key=value, got {token!r}"
            )
        key, value = token.split("=", 1)
        if key in fields:
            raise NetlistFormatError(f"line {lineno}: duplicate key {key!r}")
        fields[key] = value
    try:
        lut = int(fields.pop("lut"), 0)
    except (KeyError, ValueError):
        raise NetlistFormatError(f"line {lineno}: bad or missing lut=") from None
    inputs_text = fields.pop("inputs", "")
    inputs = tuple(n for n in inputs_text.split(",") if n)
    mode_text = fields.pop("mode", CellMode.COMBINATIONAL.value)
    try:
        mode = CellMode(mode_text)
    except ValueError:
        raise NetlistFormatError(
            f"line {lineno}: unknown mode {mode_text!r}"
        ) from None
    ce = fields.pop("ce", None)
    init_text = fields.pop("init", "0")
    if init_text not in ("0", "1"):
        raise NetlistFormatError(f"line {lineno}: init must be 0 or 1")
    output = fields.pop("out", "")
    if fields:
        extra = ", ".join(sorted(fields))
        raise NetlistFormatError(f"line {lineno}: unknown keys {extra}")
    try:
        return Cell(
            name,
            lut,
            inputs,
            mode=mode,
            ce=ce,
            output=output,
            init_state=int(init_text),
        )
    except ValueError as exc:
        raise NetlistFormatError(f"line {lineno}: {exc}") from exc


def save(circuit: Circuit, path: str) -> None:
    """Write a circuit to a ``.rnl`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(circuit))


def load(path: str) -> Circuit:
    """Read a circuit from a ``.rnl`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
