"""Netlist substrate: cells, circuits, simulation, benchmarks, mapping.

The live payloads of every relocation experiment come from here: small
canonical circuits (``repro.netlist.library``), ITC'99-statistics
benchmarks (``repro.netlist.itc99``), the cycle-accurate simulator with
drive-conflict detection (``repro.netlist.simulator``) and the timed
parallel-path analysis of Fig. 6 (``repro.netlist.timing``).
"""

from .cells import (
    Cell,
    LUT_AND2,
    LUT_AND3,
    LUT_BUF,
    LUT_CONST0,
    LUT_CONST1,
    LUT_MAJ3,
    LUT_MUX21,
    LUT_NAND2,
    LUT_NOR2,
    LUT_NOT,
    LUT_OR2,
    LUT_OR3,
    LUT_XNOR2,
    LUT_XOR2,
    LUT_XOR3,
    lut_eval,
    mux21,
    or2,
)
from .circuit import Circuit, CircuitStats, NetlistError
from .io import NetlistFormatError, dumps, load, loads, save
from .itc99 import ITC99_STATS, Itc99Spec, generate, generate_suite, spec
from .simulator import (
    CycleSimulator,
    DriveConflict,
    LockstepChecker,
    SimulationError,
)
from .synth import MappedDesign, MappingError, footprint_shape, pack, place
from .timing import (
    FuzzInterval,
    ParallelPathReport,
    Transition,
    Waveform,
    merge_parallel_paths,
    square_wave,
)

__all__ = [
    "Cell",
    "Circuit",
    "CircuitStats",
    "CycleSimulator",
    "DriveConflict",
    "FuzzInterval",
    "ITC99_STATS",
    "Itc99Spec",
    "LUT_AND2",
    "LUT_AND3",
    "LUT_BUF",
    "LUT_CONST0",
    "LUT_CONST1",
    "LUT_MAJ3",
    "LUT_MUX21",
    "LUT_NAND2",
    "LUT_NOR2",
    "LUT_NOT",
    "LUT_OR2",
    "LUT_OR3",
    "LUT_XNOR2",
    "LUT_XOR2",
    "LUT_XOR3",
    "LockstepChecker",
    "MappedDesign",
    "MappingError",
    "NetlistError",
    "NetlistFormatError",
    "ParallelPathReport",
    "SimulationError",
    "Transition",
    "Waveform",
    "dumps",
    "footprint_shape",
    "generate",
    "generate_suite",
    "load",
    "loads",
    "lut_eval",
    "save",
    "merge_parallel_paths",
    "mux21",
    "or2",
    "pack",
    "place",
    "spec",
    "square_wave",
]
