"""Synthetic circuits with ITC'99 benchmark statistics.

The paper validates relocation on "a group of circuits from the ITC'99
Benchmark Circuits from the Politecnico di Torino implemented in a Virtex
XCV200 ... purely synchronous with only one single-phase clock signal"
(section 2).  The original VHDL sources (and the authors' mappings) are
not distributable here, so we generate synthetic LUT/FF netlists matching
the published size characteristics of each benchmark: primary inputs,
primary outputs, flip-flop count and gate count.

The substitution is behaviour-preserving for the paper's purpose: the
benchmarks serve as *live payloads whose outputs and state must survive
relocation*; any synchronous LUT-mapped circuit of the same size class
exercises the identical relocation code path (DESIGN.md, section 2).

Gate counts are mapped to 4-input LUTs at the customary ~1.8 gates/LUT
packing ratio; each flip-flop absorbs one function LUT, as in the Virtex
logic cell.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.device.clb import CellMode

from .cells import Cell
from .circuit import Circuit

#: Published ITC'99 benchmark characteristics (approximate; sources vary
#: by a few percent depending on the synthesis front end): name ->
#: (primary inputs, primary outputs, flip-flops, gates).
ITC99_STATS: dict[str, tuple[int, int, int, int]] = {
    "b01": (2, 2, 5, 45),
    "b02": (1, 1, 4, 25),
    "b03": (4, 4, 30, 150),
    "b04": (11, 8, 66, 600),
    "b05": (1, 36, 34, 608),
    "b06": (2, 6, 9, 56),
    "b07": (1, 8, 49, 420),
    "b08": (9, 4, 21, 168),
    "b09": (1, 1, 28, 131),
    "b10": (11, 6, 17, 172),
    "b11": (7, 6, 31, 366),
    "b12": (5, 6, 121, 904),
    "b13": (10, 10, 53, 262),
    "b14": (32, 54, 245, 4232),
}

#: Average equivalent gates absorbed by one 4-input LUT.
GATES_PER_LUT = 1.8


@dataclass(frozen=True)
class Itc99Spec:
    """Target statistics for one generated benchmark."""

    name: str
    inputs: int
    outputs: int
    flip_flops: int
    gates: int

    @property
    def luts(self) -> int:
        """Combinational LUTs to generate (FFs absorb one LUT each)."""
        return max(1, round(self.gates / GATES_PER_LUT) - self.flip_flops)

    @property
    def cells(self) -> int:
        """Total logic cells (LUT-only plus LUT+FF)."""
        return self.luts + self.flip_flops


def spec(name: str) -> Itc99Spec:
    """The generation spec for a named ITC'99 benchmark."""
    try:
        pi, po, ff, gates = ITC99_STATS[name]
    except KeyError:
        known = ", ".join(sorted(ITC99_STATS))
        raise KeyError(f"unknown ITC'99 circuit {name!r}; known: {known}") from None
    return Itc99Spec(name, pi, po, ff, gates)


def _random_lut(rng: random.Random, n_inputs: int) -> int:
    """A random non-constant truth table over ``n_inputs`` variables."""
    size = 1 << n_inputs
    while True:
        bits = rng.getrandbits(size)
        if 0 < bits < (1 << size) - 1:
            # Replicate up to 16 entries so unused inputs are don't-care.
            table = 0
            for k in range(16 // size):
                table |= bits << (k * size)
            return table


def generate(name: str, seed: int | None = None,
             gated_fraction: float = 0.0) -> Circuit:
    """Generate a synthetic circuit with the statistics of ``name``.

    ``gated_fraction`` converts that share of flip-flops to gated-clock
    cells, all sharing one enable net derived from the first primary
    input through a buffer LUT — mirroring the clock-enable structure the
    paper's gated-clock experiments need.  Deterministic per (name, seed).
    """
    s = spec(name)
    if not 0.0 <= gated_fraction <= 1.0:
        raise ValueError("gated_fraction must be within [0, 1]")
    rng = random.Random(seed if seed is not None else hash(name) & 0xFFFF)
    circuit = Circuit(name)
    pool: list[str] = [circuit.add_input(f"{name}_pi{i}") for i in range(s.inputs)]

    # Flip-flop outputs join the net pool up front (they break cycles).
    ff_names = [f"{name}_ff{i}" for i in range(s.flip_flops)]
    pool.extend(ff_names)

    enable_net: str | None = None
    n_gated = round(s.flip_flops * gated_fraction)
    if n_gated > 0:
        enable = Cell(f"{name}_en", 0xAAAA, (pool[0],))
        circuit.add_cell(enable)
        enable_net = enable.output

    # Combinational cloud: a DAG by construction (cells read only nets
    # already in the pool).
    for i in range(s.luts):
        fanin = rng.randint(2, 4)
        picks = tuple(rng.choice(pool) for _ in range(fanin))
        cell = Cell(f"{name}_g{i}", _random_lut(rng, fanin), picks)
        circuit.add_cell(cell)
        pool.append(cell.output)

    # Flip-flops: D-side LUTs may read the full pool (registered feedback
    # is legal); a slice of them are gated-clock cells.
    for i, ff_name in enumerate(ff_names):
        fanin = rng.randint(2, 4)
        picks = tuple(rng.choice(pool) for _ in range(fanin))
        gated = i < n_gated
        circuit.add_cell(
            Cell(
                ff_name,
                _random_lut(rng, fanin),
                picks,
                mode=CellMode.FF_GATED_CLOCK if gated else CellMode.FF_FREE_CLOCK,
                ce=enable_net if gated else None,
                init_state=rng.randint(0, 1),
            )
        )

    # Primary outputs: prefer registered nets, then deep combinational ones.
    candidates = ff_names + pool[len(ff_names):][::-1]
    outputs = []
    for net in candidates:
        if net not in outputs and net not in circuit.inputs:
            outputs.append(net)
        if len(outputs) == s.outputs:
            break
    circuit.set_outputs(outputs)
    circuit.validate()
    return circuit


def generate_suite(names: list[str] | None = None, seed: int = 1999,
                   gated_fraction: float = 0.0) -> list[Circuit]:
    """Generate several benchmarks (default: the small/medium set the
    relocation experiments use; b14 is large and opt-in)."""
    if names is None:
        names = [n for n in sorted(ITC99_STATS) if n != "b14"]
    return [
        generate(name, seed=seed + i, gated_fraction=gated_fraction)
        for i, name in enumerate(names)
    ]
